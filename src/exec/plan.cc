#include "exec/plan.h"

#include "common/macros.h"
#include "common/strings.h"
#include "exec/row_batch.h"

namespace qprog {

namespace {

void AssignIds(PhysicalOperator* op, std::vector<PhysicalOperator*>* nodes) {
  op->set_node_id(static_cast<int>(nodes->size()));
  nodes->push_back(op);
  for (size_t i = 0; i < op->num_children(); ++i) {
    AssignIds(op->child(i), nodes);
  }
}

void PrintTree(const PhysicalOperator* op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(StringPrintf("#%d %s", op->node_id(), op->label().c_str()));
  if (op->estimated_rows() >= 0) {
    out->append(StringPrintf("  [est=%.0f]", op->estimated_rows()));
  }
  out->append("\n");
  for (size_t i = 0; i < op->num_children(); ++i) {
    PrintTree(op->child(i), depth + 1, out);
  }
}

}  // namespace

PhysicalPlan::PhysicalPlan(OperatorPtr root) : root_(std::move(root)) {
  QPROG_CHECK(root_ != nullptr);
  AssignIds(root_.get(), &nodes_);
  root_->set_is_root(true);
}

std::string PhysicalPlan::ToString() const {
  std::string out;
  PrintTree(root_.get(), 0, &out);
  return out;
}

namespace exec {

DriveResult Drive(PhysicalPlan* plan, const DriveOptions& opts) {
  DriveResult result;
  ExecContext local;
  ExecContext* ctx = opts.ctx;
  if (ctx == nullptr) {
    // Context-free run: wire the caller's environment into a throwaway
    // context. A caller-provided context keeps whatever it already wired.
    ctx = &local;
    if (opts.guard != nullptr) local.set_guard(opts.guard);
    if (opts.fault_injector != nullptr) {
      local.set_fault_injector(opts.fault_injector);
    }
    if (opts.spill_manager != nullptr) {
      local.set_spill_manager(opts.spill_manager);
    }
    if (opts.worker_pool != nullptr) local.set_worker_pool(opts.worker_pool);
    if (opts.telemetry != nullptr) local.set_telemetry(opts.telemetry);
  }
  ctx->Reset(plan->num_nodes());
  PhysicalOperator* root = plan->root();
  root->Open(ctx);
  auto deliver = [&result, &opts](const Row& row) {
    ++result.root_rows;
    if (opts.sink) opts.sink(row);
    if (opts.collect_rows) result.rows.push_back(row);
  };
  if (opts.batch_size == 0) {
    Row row;
    // Stop on the first execution error; a row produced concurrently with a
    // guard trip is dropped (the query is aborting). Close always runs so
    // operators release buffered state even on an aborted run.
    while (ctx->ok() && root->Next(ctx, &row)) deliver(row);
  } else {
    RowBatch batch(opts.batch_size);
    bool more = true;
    // Same stop rule as the tuple loop: ok() is checked before each pull,
    // and every row the root actually returned is delivered — a mid-batch
    // error ends the batch at the exact row the tuple loop would stop at.
    while (more && ctx->ok()) {
      batch.Clear();
      more = root->NextBatch(ctx, &batch);
      for (size_t i = 0; i < batch.size(); ++i) deliver(batch.row(i));
    }
  }
  root->Close(ctx);
  result.status = ctx->status();
  result.work = ctx->work();
  return result;
}

}  // namespace exec

uint64_t ExecutePlan(PhysicalPlan* plan, ExecContext* ctx,
                     const std::function<void(const Row&)>& sink) {
  exec::DriveOptions opts;
  opts.ctx = ctx;
  opts.sink = sink;
  return exec::Drive(plan, opts).root_rows;
}

Status RunPlan(PhysicalPlan* plan, ExecContext* ctx,
               const std::function<void(const Row&)>& sink) {
  exec::DriveOptions opts;
  opts.ctx = ctx;
  opts.sink = sink;
  return exec::Drive(plan, opts).status;
}

uint64_t ExecutePlanBatched(PhysicalPlan* plan, ExecContext* ctx,
                            size_t batch_size,
                            const std::function<void(const Row&)>& sink) {
  exec::DriveOptions opts;
  opts.ctx = ctx;
  opts.batch_size = batch_size;
  opts.sink = sink;
  return exec::Drive(plan, opts).root_rows;
}

Status RunPlanBatched(PhysicalPlan* plan, ExecContext* ctx, size_t batch_size,
                      const std::function<void(const Row&)>& sink) {
  exec::DriveOptions opts;
  opts.ctx = ctx;
  opts.batch_size = batch_size;
  opts.sink = sink;
  return exec::Drive(plan, opts).status;
}

std::vector<Row> CollectRows(PhysicalPlan* plan, ExecContext* ctx) {
  exec::DriveOptions opts;
  opts.ctx = ctx;
  opts.collect_rows = true;
  return std::move(exec::Drive(plan, opts).rows);
}

std::vector<Row> CollectRows(PhysicalPlan* plan) {
  exec::DriveOptions opts;
  opts.collect_rows = true;
  return std::move(exec::Drive(plan, opts).rows);
}

StatusOr<std::vector<Row>> TryCollectRows(PhysicalPlan* plan,
                                          ExecContext* ctx) {
  exec::DriveOptions opts;
  opts.ctx = ctx;
  opts.collect_rows = true;
  exec::DriveResult r = exec::Drive(plan, opts);
  if (!r.ok()) return r.status;
  return std::move(r.rows);
}

StatusOr<std::vector<Row>> TryCollectRowsBatched(PhysicalPlan* plan,
                                                 ExecContext* ctx,
                                                 size_t batch_size) {
  exec::DriveOptions opts;
  opts.ctx = ctx;
  opts.batch_size = batch_size;
  opts.collect_rows = true;
  exec::DriveResult r = exec::Drive(plan, opts);
  if (!r.ok()) return r.status;
  return std::move(r.rows);
}

uint64_t MeasureTotalWork(PhysicalPlan* plan) {
  return exec::Drive(plan, {}).work;
}

bool PlanSupportsRewind(const PhysicalPlan& plan) {
  for (const PhysicalOperator* op : plan.nodes()) {
    if (!op->SupportsRewind()) return false;
  }
  return true;
}

uint64_t PlanSignature(const PhysicalPlan& plan) {
  // FNV-1a 64 over the pre-order (kind, child-count) byte stream. nodes()
  // is pre-order, so the sequence plus per-node child counts pins down the
  // tree shape exactly.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t byte) {
    h ^= byte & 0xFF;
    h *= 1099511628211ULL;
  };
  for (const PhysicalOperator* op : plan.nodes()) {
    mix(static_cast<uint64_t>(op->kind()));
    mix(op->num_children());
  }
  return h;
}

}  // namespace qprog
