#include "exec/plan.h"

#include "common/macros.h"
#include "common/strings.h"
#include "exec/row_batch.h"

namespace qprog {

namespace {

void AssignIds(PhysicalOperator* op, std::vector<PhysicalOperator*>* nodes) {
  op->set_node_id(static_cast<int>(nodes->size()));
  nodes->push_back(op);
  for (size_t i = 0; i < op->num_children(); ++i) {
    AssignIds(op->child(i), nodes);
  }
}

void PrintTree(const PhysicalOperator* op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(StringPrintf("#%d %s", op->node_id(), op->label().c_str()));
  if (op->estimated_rows() >= 0) {
    out->append(StringPrintf("  [est=%.0f]", op->estimated_rows()));
  }
  out->append("\n");
  for (size_t i = 0; i < op->num_children(); ++i) {
    PrintTree(op->child(i), depth + 1, out);
  }
}

}  // namespace

PhysicalPlan::PhysicalPlan(OperatorPtr root) : root_(std::move(root)) {
  QPROG_CHECK(root_ != nullptr);
  AssignIds(root_.get(), &nodes_);
  root_->set_is_root(true);
}

std::string PhysicalPlan::ToString() const {
  std::string out;
  PrintTree(root_.get(), 0, &out);
  return out;
}

uint64_t ExecutePlan(PhysicalPlan* plan, ExecContext* ctx,
                     const std::function<void(const Row&)>& sink) {
  ctx->Reset(plan->num_nodes());
  PhysicalOperator* root = plan->root();
  root->Open(ctx);
  Row row;
  uint64_t produced = 0;
  // Stop on the first execution error; a row produced concurrently with a
  // guard trip is dropped (the query is aborting). Close always runs so
  // operators release buffered state even on an aborted run.
  while (ctx->ok() && root->Next(ctx, &row)) {
    ++produced;
    if (sink) sink(row);
  }
  root->Close(ctx);
  return produced;
}

Status RunPlan(PhysicalPlan* plan, ExecContext* ctx,
               const std::function<void(const Row&)>& sink) {
  ExecutePlan(plan, ctx, sink);
  return ctx->status();
}

uint64_t ExecutePlanBatched(PhysicalPlan* plan, ExecContext* ctx,
                            size_t batch_size,
                            const std::function<void(const Row&)>& sink) {
  if (batch_size == 0) return ExecutePlan(plan, ctx, sink);
  ctx->Reset(plan->num_nodes());
  PhysicalOperator* root = plan->root();
  root->Open(ctx);
  RowBatch batch(batch_size);
  uint64_t produced = 0;
  bool more = true;
  // Same stop rule as the tuple driver: ok() is checked before each pull,
  // and every row the root actually returned is delivered — a mid-batch
  // error ends the batch at the exact row the tuple loop would stop at.
  while (more && ctx->ok()) {
    batch.Clear();
    more = root->NextBatch(ctx, &batch);
    for (size_t i = 0; i < batch.size(); ++i) {
      ++produced;
      if (sink) sink(batch.row(i));
    }
  }
  root->Close(ctx);
  return produced;
}

Status RunPlanBatched(PhysicalPlan* plan, ExecContext* ctx, size_t batch_size,
                      const std::function<void(const Row&)>& sink) {
  ExecutePlanBatched(plan, ctx, batch_size, sink);
  return ctx->status();
}

std::vector<Row> CollectRows(PhysicalPlan* plan, ExecContext* ctx) {
  std::vector<Row> rows;
  ExecutePlan(plan, ctx, [&rows](const Row& row) { rows.push_back(row); });
  return rows;
}

std::vector<Row> CollectRows(PhysicalPlan* plan) {
  ExecContext ctx;
  return CollectRows(plan, &ctx);
}

StatusOr<std::vector<Row>> TryCollectRows(PhysicalPlan* plan,
                                          ExecContext* ctx) {
  std::vector<Row> rows = CollectRows(plan, ctx);
  if (!ctx->ok()) return ctx->status();
  return rows;
}

StatusOr<std::vector<Row>> TryCollectRowsBatched(PhysicalPlan* plan,
                                                 ExecContext* ctx,
                                                 size_t batch_size) {
  std::vector<Row> rows;
  ExecutePlanBatched(plan, ctx, batch_size,
                     [&rows](const Row& row) { rows.push_back(row); });
  if (!ctx->ok()) return ctx->status();
  return rows;
}

uint64_t MeasureTotalWork(PhysicalPlan* plan) {
  ExecContext ctx;
  ExecutePlan(plan, &ctx);
  return ctx.work();
}

bool PlanSupportsRewind(const PhysicalPlan& plan) {
  for (const PhysicalOperator* op : plan.nodes()) {
    if (!op->SupportsRewind()) return false;
  }
  return true;
}

uint64_t PlanSignature(const PhysicalPlan& plan) {
  // FNV-1a 64 over the pre-order (kind, child-count) byte stream. nodes()
  // is pre-order, so the sequence plus per-node child counts pins down the
  // tree shape exactly.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t byte) {
    h ^= byte & 0xFF;
    h *= 1099511628211ULL;
  };
  for (const PhysicalOperator* op : plan.nodes()) {
    mix(static_cast<uint64_t>(op->kind()));
    mix(op->num_children());
  }
  return h;
}

}  // namespace qprog
