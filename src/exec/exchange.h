// Exchange: the repartition boundary that lets whole pipelines run
// partitioned end-to-end (partitioned scan → filter → partial aggregate →
// exchange(hash on group key) → final aggregate), plus the partial/final
// aggregate pair that decomposes a hash aggregation across it.
//
// An Exchange owns N producer subtrees (its children) and hash-routes every
// producer row to one of M consumer buckets on its key columns. With a
// WorkerPool attached to the context, the N producers run as one task per
// partition; without one, they run inline on the query thread — the
// reference serial semantics.
//
// Determinism contract (DESIGN.md §16), extending the sharded-then-folded
// rules of §10:
//  * Pooled producers never touch the ExecContext. Each task runs its
//    producer subtree against a private per-task context (counters sized to
//    the subtree, fault injector = the task's deterministic fork, no guard /
//    telemetry / spill), and records routed rows bucket-by-bucket in arrival
//    order. After the barrier the query thread folds partitions in partition
//    order: it replays each producer subtree's per-node getnext counts into
//    the ExecContext (so observer checkpoints, guard budgets and work-indexed
//    cancels land at the exact scheduled crossings — pool-size-invariant),
//    charges the partition's routed rows against the buffer budget (spilling
//    the buckets to per-bucket runs when the soft budget fills), and emits
//    the partition_close trace event. Rows, counters and traces are
//    therefore byte-identical across pool sizes.
//  * Per-partition getnext accounting sums at the exchange boundary: every
//    producer node's counter lands in the same ExecContext slots the serial
//    plan would use, so `dne` driver totals and the bounds walker's
//    [LB, UB] stay exact for partitioned plans.
//  * Consumer buckets drain in bucket order 0..M-1, each bucket holding its
//    rows in (partition, arrival) order — a total order derived from data,
//    never from scheduling.
//
// Task-key registry entry (DESIGN.md §10): 0x55 in the top byte, producer
// partition index in the low bits.

#ifndef QPROG_EXEC_EXCHANGE_H_
#define QPROG_EXEC_EXCHANGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/aggregate.h"
#include "exec/operator.h"
#include "exec/spill.h"
#include "expr/expr.h"

namespace qprog {

class WorkerPool;

/// Hash-repartitions N producer partitions (children) into M consumer
/// buckets. Blocking: the first Next() materializes every producer, then
/// the operator streams buckets 0..M-1 in order. Memory-adaptive: routed
/// rows are charged per producer partition via ChargeBufferedRowsOrSpill;
/// when the soft budget fills (including mid-run governor revocations), the
/// buckets flush to one spill run per bucket and later partitions route to
/// disk, each spilled row costing one write and one re-read work unit — the
/// same dynamic-total(Q) revision every other spilling operator makes.
class Exchange : public PhysicalOperator {
 public:
  /// `producers` are the partition subtrees (at least one); all must share
  /// an output schema. `key_cols` are output-column indices hashed for
  /// routing (empty = everything routes to bucket 0). `num_consumers` M is
  /// clamped to >= 1.
  Exchange(std::vector<OperatorPtr> producers, std::vector<size_t> key_cols,
           size_t num_consumers);
  ~Exchange() override;

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kExchange; }
  const Schema& output_schema() const override {
    return producers_[0]->output_schema();
  }
  size_t num_children() const override { return producers_.size(); }
  PhysicalOperator* child(size_t i) override { return producers_[i].get(); }
  std::string label() const override;
  void FillProgressState(const ExecContext& ctx,
                         ProgressState* state) const override;

  size_t num_producers() const { return producers_.size(); }
  size_t num_consumers() const { return num_consumers_; }
  /// True once this execution flushed buckets to spill runs.
  bool spilled() const { return spilled_; }

 private:
  /// Rows one producer routed, bucket-by-bucket, plus the fold bookkeeping.
  struct PartitionOut {
    std::vector<std::vector<Row>> buckets;  // M bucket vectors, arrival order
    uint64_t rows = 0;                      // total routed rows
  };

  /// Runs every producer and fills the consumer buckets. False on error.
  bool Materialize(ExecContext* ctx);
  /// Inline reference path: producers run on the query thread against `ctx`
  /// itself (live counters, main fault injector).
  bool MaterializeSerial(ExecContext* ctx);
  /// Pooled path: one task per producer on private contexts; folds in
  /// partition order (see the determinism contract above).
  bool MaterializePooled(ExecContext* ctx, WorkerPool* pool);
  /// Task body: runs `producer` to completion against `prod_ctx`, routing
  /// rows into `out` and consulting the exchange.send fault site per row.
  void ProduceTask(class TaskContext* tc, ExecContext* prod_ctx,
                   PhysicalOperator* producer, PartitionOut* out) const;
  /// Query-thread fold of one partition's routed rows: charge against the
  /// buffer budget, append to the in-memory buckets or spill runs, emit the
  /// partition_close trace event. False on error.
  bool FoldPartition(ExecContext* ctx, size_t partition, PartitionOut* out);
  /// Flushes the in-memory buckets to per-bucket spill runs and releases
  /// their charge; subsequent partitions route straight to the runs.
  bool SwitchToSpill(ExecContext* ctx);

  size_t BucketOf(const Row& row) const;
  /// Largest node id in any producer subtree + 1 — the counter span a
  /// private producer context needs.
  size_t SubtreeCounterSpan() const;

  std::vector<OperatorPtr> producers_;
  std::vector<size_t> key_cols_;
  size_t num_consumers_;

  bool materialized_ = false;
  std::vector<std::vector<Row>> buckets_;   // in-memory consumer partitions
  std::vector<SpillRunPtr> bucket_runs_;    // per-bucket runs once spilled
  bool spilled_ = false;
  uint64_t charged_ = 0;       // rows charged to the buffer budget
  uint64_t routed_rows_ = 0;   // total rows accepted across partitions
  uint64_t rows_spilled_ = 0;  // rows appended to bucket runs
  uint64_t rows_replayed_ = 0; // rows re-read from bucket runs

  // Drain cursor.
  size_t drain_bucket_ = 0;
  size_t drain_pos_ = 0;
  bool drain_open_ = false;  // current bucket's run is open for reading
};

/// Per-partition (pre-exchange) half of a decomposed hash aggregation:
/// groups its input and emits one row per group carrying the *partial
/// state* of each aggregate — layout: the G group columns, then per
/// aggregate one column (COUNT: the partial count; SUM: the partial sum or
/// NULL when no non-null input; MIN/MAX: the partial extremum or NULL) —
/// except AVG, which carries two ("<name>_sum", "<name>_count").
/// COUNT(DISTINCT) is not decomposable this way and is rejected.
///
/// Buffered groups are intentionally *not* charged against the buffer
/// budget here: every group becomes exactly one routed row that the parent
/// Exchange charges (and can spill), so the account stays single-entry.
/// Reports kind() == kHashAggregate so the bounds walker's and pipeline
/// decomposition's aggregate reasoning applies unchanged.
class PartialAggregate : public PhysicalOperator {
 public:
  PartialAggregate(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                   std::vector<std::string> group_names,
                   std::vector<AggregateDesc> aggregates);

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kHashAggregate; }
  const Schema& output_schema() const override { return schema_; }
  size_t num_children() const override { return 1; }
  PhysicalOperator* child(size_t) override { return child_.get(); }
  std::string label() const override;
  void FillProgressState(const ExecContext& ctx,
                         ProgressState* state) const override;

  /// Partial-state columns contributed by one aggregate (2 for AVG, else 1).
  static size_t StateWidth(AggFunc func) {
    return func == AggFunc::kAvg ? 2 : 1;
  }
  /// True when every aggregate in `descs` can be decomposed into a
  /// partial/final pair across an exchange.
  static bool Decomposable(const std::vector<AggregateDesc>& descs);

 private:
  void Build(ExecContext* ctx);

  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggregateDesc> aggregates_;
  Schema schema_;

  bool built_ = false;
  std::unordered_map<Row, size_t, RowHash, RowEq> group_index_;
  std::vector<Row> group_keys_;  // first-seen order
  std::vector<std::vector<AggAccumulator>> group_states_;
  size_t cursor_ = 0;
};

/// Post-exchange half: merges partial-state rows (grouped by their first G
/// columns — the exchange routed each group key to exactly one bucket) and
/// emits final aggregate values. Output order is *sorted by group key*
/// (NULLs first): a canonical order that is identical across pool sizes AND
/// partition counts, unlike first-seen order, which would depend on the
/// partition layout.
class FinalAggregate : public PhysicalOperator {
 public:
  /// `child` produces partial rows (normally an Exchange). `num_group_cols`
  /// G is the group-key prefix width; `group_names` its output names;
  /// `aggregates` the original descriptors (their `arg` exprs are unused
  /// here — merging reads the partial-state columns positionally).
  FinalAggregate(OperatorPtr child, size_t num_group_cols,
                 std::vector<std::string> group_names,
                 std::vector<AggregateDesc> aggregates);

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kHashAggregate; }
  const Schema& output_schema() const override { return schema_; }
  size_t num_children() const override { return 1; }
  PhysicalOperator* child(size_t) override { return child_.get(); }
  std::string label() const override;
  void FillProgressState(const ExecContext& ctx,
                         ProgressState* state) const override;

 private:
  /// Running merged state for one aggregate within one group.
  struct MergedAgg {
    int64_t count = 0;     // COUNT / AVG denominators
    double sum = 0.0;      // SUM / AVG numerators
    Value extremum;        // MIN / MAX
    bool seen = false;     // any non-null partial folded in
  };

  void Build(ExecContext* ctx);
  void MergeRow(const Row& row, std::vector<MergedAgg>* states) const;
  Value FinalValue(AggFunc func, const MergedAgg& m) const;

  OperatorPtr child_;
  size_t num_group_cols_;
  std::vector<AggregateDesc> aggregates_;
  Schema schema_;

  bool built_ = false;
  std::vector<Row> results_;  // final rows, sorted by group key
  size_t cursor_ = 0;
  uint64_t charged_ = 0;  // groups charged against the kill threshold
};

}  // namespace qprog

#endif  // QPROG_EXEC_EXCHANGE_H_
