#include "exec/spill.h"

#include <utility>

#include "exec/fault_injector.h"

namespace qprog {

// --------------------------------------------------------------------------
// SpillRun

SpillRun::SpillRun(SpillManager* manager, std::unique_ptr<SpillFile> file,
                   std::string phase)
    : manager_(manager), file_(std::move(file)), phase_(std::move(phase)) {}

SpillRun::~SpillRun() { Discard(); }

void SpillRun::Discard() {
  if (file_ != nullptr) {
    file_.reset();  // closes and deletes the temp file
    ++manager_->stats_.runs_deleted;
  }
}

bool SpillRun::Append(ExecContext* ctx, int node, const Row& row) {
  if (!ctx->ok()) return false;
  scratch_.clear();
  AppendRowBytes(row, &scratch_);
  Status status =
      manager_->WithRetries(ctx, node, faults::kSpillWrite, [&]() -> Status {
        return file_->AppendRecord(scratch_.data(), scratch_.size());
      });
  if (!status.ok()) {
    manager_->RaiseIoError(ctx, node, faults::kSpillWrite, std::move(status));
    return false;
  }
  ++rows_written_;
  ++manager_->stats_.rows_written;
  manager_->stats_.bytes_written += scratch_.size();
  // One unit of extra work per spilled row: total(Q) just grew.
  ctx->AddSpillWork(node, 1);
  return ctx->ok();  // counting the work may have tripped the guard
}

bool SpillRun::FinishWrite(ExecContext* ctx, int node) {
  if (!ctx->ok()) return false;
  if (ctx->telemetry() != nullptr) {
    ctx->telemetry()->RecordSpillEnd(node, ctx->work(), phase_, rows_written_,
                                     file_->bytes_written());
  }
  return true;
}

bool SpillRun::OpenRead(ExecContext* ctx, int node) {
  if (!ctx->ok()) return false;
  Status status =
      manager_->WithRetries(ctx, node, faults::kSpillOpen, [&]() -> Status {
        return file_->SeekToStart();
      });
  if (!status.ok()) {
    manager_->RaiseIoError(ctx, node, faults::kSpillOpen, std::move(status));
    return false;
  }
  // A rewind puts every row back in front of the reader: pending work (and
  // with it LB/UB) grows again, which is exactly what a re-read pass costs.
  rows_read_ = 0;
  return true;
}

bool SpillRun::ReadNext(ExecContext* ctx, int node, Row* row) {
  if (!ctx->ok()) return false;
  bool got_record = false;
  Status status =
      manager_->WithRetries(ctx, node, faults::kSpillRead, [&]() -> Status {
        StatusOr<bool> record = file_->ReadRecord(&scratch_);
        if (!record.ok()) return record.status();
        got_record = record.value();
        return OkStatus();
      });
  if (!status.ok()) {
    manager_->RaiseIoError(ctx, node, faults::kSpillRead, std::move(status));
    return false;
  }
  if (!got_record) return false;  // clean end of run
  status = ParseRowBytes(scratch_, row);
  if (!status.ok()) {
    manager_->RaiseIoError(ctx, node, faults::kSpillRead, std::move(status));
    return false;
  }
  ++rows_read_;
  ++manager_->stats_.rows_read;
  if (ctx->telemetry() != nullptr) ctx->telemetry()->RecordSpillRead(node, 1);
  ctx->AddSpillWork(node, 1);
  return ctx->ok();
}

// --------------------------------------------------------------------------
// SpillManager

SpillManager::SpillManager(std::string dir, SpillRetryPolicy policy)
    : dir_(std::move(dir)), policy_(policy) {
  QPROG_CHECK(policy_.max_attempts >= 1);
}

SpillRunPtr SpillManager::CreateRun(ExecContext* ctx, int node,
                                    const char* phase) {
  if (!ctx->ok()) return nullptr;
  std::unique_ptr<SpillFile> file;
  Status status = WithRetries(ctx, node, faults::kSpillOpen, [&]() -> Status {
    StatusOr<std::unique_ptr<SpillFile>> created = SpillFile::Create(dir_);
    if (!created.ok()) return created.status();
    file = std::move(created).value();
    return OkStatus();
  });
  if (!status.ok()) {
    RaiseIoError(ctx, node, faults::kSpillOpen, std::move(status));
    return nullptr;
  }
  ++stats_.runs_created;
  if (ctx->telemetry() != nullptr) {
    ctx->telemetry()->RecordSpillBegin(node, ctx->work(), phase);
  }
  return SpillRunPtr(new SpillRun(this, std::move(file), phase));
}

Status SpillManager::WithRetries(ExecContext* ctx, int node, const char* site,
                                 const std::function<Status()>& attempt) {
  uint64_t spins = policy_.backoff_spins;
  Status last;
  for (int try_no = 1;; ++try_no) {
    // The injector stands in for the I/O layer and is consulted *before* the
    // real operation: an injected failure leaves the file untouched, which is
    // what makes the retry sound (a partial real write is never retried).
    Status status = OkStatus();
    FaultInjector* injector = ctx->fault_injector();
    if (injector != nullptr) status = injector->OnHit(site);
    if (status.ok()) status = attempt();
    if (status.ok()) return status;
    if (status.code() != StatusCode::kUnavailable) return status;
    last = std::move(status);
    if (try_no >= policy_.max_attempts) return last;
    ++stats_.io_retries;
    if (ctx->telemetry() != nullptr) {
      ctx->telemetry()->RecordIoRetry(node, ctx->work(), site,
                                      static_cast<uint64_t>(try_no));
    }
    // Deterministic doubling backoff: a busy-wait, not a sleep, so a seeded
    // run produces a byte-identical trace every time.
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < spins; ++i) sink += i;
    spins *= 2;
  }
}

void SpillManager::RaiseIoError(ExecContext* ctx, int node, const char* site,
                                Status status) {
  if (ctx->telemetry() != nullptr) {
    ctx->telemetry()->RecordFault(node, ctx->work(), site, status.message());
  }
  ctx->RaiseError(std::move(status));
}

}  // namespace qprog
