#include "exec/spill.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "exec/fault_injector.h"

namespace qprog {

namespace {

// Pay device-model debt in chunks of at least this much: sleeping per byte
// would drown the model in syscall overhead, while 100us chunks keep the
// simulated bandwidth accurate to well under a percent at realistic rates.
constexpr uint64_t kDeviceSleepChunkNs = 100 * 1000;

}  // namespace

size_t GracePartitionIndex(size_t hash, int level, int fanout) {
  uint64_t x = static_cast<uint64_t>(hash);
  if (level > 0) {
    x += 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(level);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
  }
  return static_cast<size_t>(x % static_cast<uint64_t>(fanout));
}

// --------------------------------------------------------------------------
// SpillRun

SpillRun::SpillRun(SpillManager* manager, std::unique_ptr<SpillFile> file,
                   std::string phase)
    : manager_(manager),
      file_(std::move(file)),
      path_(file_->path()),
      phase_(std::move(phase)) {}

SpillRun::~SpillRun() { Discard(); }

void SpillRun::Discard() {
  if (file_ != nullptr) {
    file_.reset();  // closes and deletes the temp file
    manager_->UnregisterLiveFile(path_);
    ++manager_->stats_.runs_deleted;
  }
}

void SpillRun::ChargeDevice() {
  const SpillDeviceModel& model = manager_->device_model_;
  if (!model.enabled()) return;
  uint64_t written = file_->bytes_written();
  uint64_t read = file_->bytes_read();
  // bytes_read resets to 0 on rewind; resync instead of charging a wrap.
  if (read < device_read_seen_) device_read_seen_ = read;
  device_debt_ns_ += (written - device_written_seen_) * model.write_ns_per_byte;
  device_debt_ns_ += (read - device_read_seen_) * model.read_ns_per_byte;
  device_written_seen_ = written;
  device_read_seen_ = read;
  if (device_debt_ns_ >= kDeviceSleepChunkNs) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(device_debt_ns_));
    device_debt_ns_ = 0;
  }
}

bool SpillRun::Append(WorkContext* wc, int node, const Row& row) {
  if (!wc->ok()) return false;
  scratch_.clear();
  AppendRowBytes(row, &scratch_);
  Status status =
      manager_->WithRetries(wc, node, faults::kSpillWrite, [&]() -> Status {
        return file_->AppendRecord(scratch_.data(), scratch_.size());
      });
  if (!status.ok()) {
    manager_->RaiseIoError(wc, node, faults::kSpillWrite, std::move(status));
    return false;
  }
  ++rows_written_;
  ChargeDevice();
  if (accounted_) {
    ++manager_->stats_.rows_written;
    manager_->stats_.bytes_written += scratch_.size();
    // One unit of extra work per spilled row: total(Q) just grew.
    wc->AddSpillWork(node, 1);
  }
  return wc->ok();  // counting the work may have tripped the guard
}

bool SpillRun::FinishWrite(WorkContext* wc, int node) {
  if (!wc->ok()) return false;
  // Seal flushes the final codec block, so the spill_end byte count below is
  // the run's true on-disk size (identical to bytes_written in record mode).
  Status status = manager_->WithRetries(
      wc, node, faults::kSpillWrite, [&]() -> Status { return file_->Seal(); });
  if (!status.ok()) {
    manager_->RaiseIoError(wc, node, faults::kSpillWrite, std::move(status));
    return false;
  }
  ChargeDevice();
  if (accounted_) {
    manager_->stats_.disk_bytes_written += file_->bytes_written();
    wc->OnSpillEnd(node, phase_, rows_written_, file_->bytes_written());
  }
  return true;
}

bool SpillRun::OpenRead(WorkContext* wc, int node) {
  if (!wc->ok()) return false;
  Status status =
      manager_->WithRetries(wc, node, faults::kSpillOpen, [&]() -> Status {
        return file_->SeekToStart();
      });
  if (!status.ok()) {
    manager_->RaiseIoError(wc, node, faults::kSpillOpen, std::move(status));
    return false;
  }
  ChargeDevice();  // rewind may have flushed a final block
  // A rewind puts every row back in front of the reader: pending work (and
  // with it LB/UB) grows again, which is exactly what a re-read pass costs.
  rows_read_ = 0;
  return true;
}

bool SpillRun::ReadNext(WorkContext* wc, int node, Row* row) {
  if (!wc->ok()) return false;
  bool got_record = false;
  Status status =
      manager_->WithRetries(wc, node, faults::kSpillRead, [&]() -> Status {
        StatusOr<bool> record = file_->ReadRecord(&scratch_);
        if (!record.ok()) return record.status();
        got_record = record.value();
        return OkStatus();
      });
  if (!status.ok()) {
    manager_->RaiseIoError(wc, node, faults::kSpillRead, std::move(status));
    return false;
  }
  if (!got_record) return false;  // clean end of run
  status = ParseRowBytes(scratch_, row);
  if (!status.ok()) {
    manager_->RaiseIoError(wc, node, faults::kSpillRead, std::move(status));
    return false;
  }
  ++rows_read_;
  ChargeDevice();
  if (accounted_) {
    ++manager_->stats_.rows_read;
    wc->OnSpillRead(node, 1);
    wc->AddSpillWork(node, 1);
  }
  return wc->ok();
}

// --------------------------------------------------------------------------
// SpillManager

SpillManager::SpillManager(std::string dir, SpillRetryPolicy policy)
    : dir_(std::move(dir)), policy_(policy) {
  QPROG_CHECK(policy_.max_attempts >= 1);
}

SpillManager::~SpillManager() {
  // Backstop sweep: anything still registered belongs to a run whose
  // destructor never fired. Unlink it here so an abnormal termination (task
  // death mid-write, dropped ownership on an abort path) cannot leak a
  // qprog-spill-* temp file past the manager. No lock contention is possible
  // — destruction means no runs are live to race with.
  for (const std::string& path : live_files_) {
    std::remove(path.c_str());
  }
  live_files_.clear();
}

std::vector<std::string> SpillManager::live_files() const {
  std::lock_guard<std::mutex> lock(live_files_mu_);
  std::vector<std::string> paths(live_files_.begin(), live_files_.end());
  std::sort(paths.begin(), paths.end());
  return paths;
}

void SpillManager::RegisterLiveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(live_files_mu_);
  live_files_.insert(path);
}

void SpillManager::UnregisterLiveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(live_files_mu_);
  live_files_.erase(path);
}

SpillRunPtr SpillManager::CreateRun(ExecContext* ctx, int node,
                                    const char* phase, int depth) {
  if (!ctx->ok()) return nullptr;
  std::unique_ptr<SpillFile> file;
  Status status = WithRetries(ctx, node, faults::kSpillOpen, [&]() -> Status {
    StatusOr<std::unique_ptr<SpillFile>> created =
        SpillFile::Create(dir_, file_options_);
    if (!created.ok()) return created.status();
    file = std::move(created).value();
    return OkStatus();
  });
  if (!status.ok()) {
    RaiseIoError(ctx, node, faults::kSpillOpen, std::move(status));
    return nullptr;
  }
  ++stats_.runs_created;
  RegisterLiveFile(file->path());
  if (ctx->telemetry() != nullptr) {
    ctx->telemetry()->RecordSpillBegin(node, ctx->work(), phase, depth);
  }
  return SpillRunPtr(new SpillRun(this, std::move(file), phase));
}

SpillRunPtr SpillManager::CreateSideRun(WorkContext* wc, int node) {
  // Thread-safe, unlike CreateRun: SpillFile::Create names files off an
  // atomic counter, the stats bump is atomic, and the manager's options are
  // frozen during execution. Deliberately silent — no spill_begin, and the
  // run is marked unaccounted so its I/O never touches the work model.
  if (!wc->ok()) return nullptr;
  std::unique_ptr<SpillFile> file;
  Status status = WithRetries(wc, node, faults::kSpillOpen, [&]() -> Status {
    StatusOr<std::unique_ptr<SpillFile>> created =
        SpillFile::Create(dir_, file_options_);
    if (!created.ok()) return created.status();
    file = std::move(created).value();
    return OkStatus();
  });
  if (!status.ok()) {
    RaiseIoError(wc, node, faults::kSpillOpen, std::move(status));
    return nullptr;
  }
  ++stats_.runs_created;
  RegisterLiveFile(file->path());
  SpillRunPtr run(new SpillRun(this, std::move(file), "side"));
  run->accounted_ = false;
  return run;
}

Status SpillManager::WithRetries(WorkContext* wc, int node, const char* site,
                                 const std::function<Status()>& attempt) {
  uint64_t spins = policy_.backoff_spins;
  Status last;
  for (int try_no = 1;; ++try_no) {
    // The injector stands in for the I/O layer and is consulted *before* the
    // real operation: an injected failure leaves the file untouched, which is
    // what makes the retry sound (a partial real write is never retried).
    Status status = OkStatus();
    FaultInjector* injector = wc->io_fault_injector();
    if (injector != nullptr) status = injector->OnHit(site);
    if (status.ok()) status = attempt();
    if (status.ok()) return status;
    if (status.code() != StatusCode::kUnavailable) return status;
    last = std::move(status);
    if (try_no >= policy_.max_attempts) return last;
    ++stats_.io_retries;
    wc->OnIoRetry(node, site, static_cast<uint64_t>(try_no));
    // Deterministic doubling backoff: a busy-wait, not a sleep, so a seeded
    // run produces a byte-identical trace every time.
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < spins; ++i) sink += i;
    spins *= 2;
  }
}

void SpillManager::RaiseIoError(WorkContext* wc, int node, const char* site,
                                Status status) {
  wc->OnIoFault(node, site, status.message());
  wc->RaiseError(std::move(status));
}

}  // namespace qprog
