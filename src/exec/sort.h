// Sort: the blocking order-by operator (also used beneath merge joins and
// stream aggregates). Consumes its whole input on first Next, then emits.
//
// Memory-adaptive: with a SpillManager attached, a buffer that would exceed
// the guard's soft budget is sorted and flushed to a spill run, and once any
// run exists the final emit phase becomes a k-way merge of sorted runs read
// back from disk (classic external run-merge sort). Without a manager — or
// without a guard — behavior is the original in-memory sort.
//
// Parallel (DESIGN.md §10): with a WorkerPool attached, run formation is
// handed off — the query thread creates the run, moves the buffer into a
// task that sorts, writes and seals it — and when more than kMergeFanIn runs
// exist, a two-level merge first has workers merge contiguous groups of runs
// into intermediate runs ("sort.merge"), leaving at most kMergeFanIn inputs
// for the final query-thread merge. Contiguous grouping keeps ties resolving
// to the earliest run at both levels, so output is byte-identical to the
// serial engine's stable one-level merge at every pool size.

#ifndef QPROG_EXEC_SORT_H_
#define QPROG_EXEC_SORT_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/spill.h"
#include "expr/expr.h"

namespace qprog {

class TaskContext;
class WorkerPool;

/// One sort key. NULLs order lowest (first under ascending).
struct SortKey {
  ExprPtr expr;
  bool descending = false;

  SortKey() = default;
  SortKey(ExprPtr e, bool desc = false)  // NOLINT(runtime/explicit)
      : expr(std::move(e)), descending(desc) {}
};

class Sort : public PhysicalOperator {
 public:
  Sort(OperatorPtr child, std::vector<SortKey> keys);

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kSort; }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  size_t num_children() const override { return 1; }
  PhysicalOperator* child(size_t) override { return child_.get(); }
  std::string label() const override;
  void FillProgressState(const ExecContext& ctx,
                         ProgressState* state) const override;

  /// True once this execution flushed at least one spill run.
  bool spilled() const { return !runs_.empty(); }

  /// Maximum runs the query-thread merge will read directly; above this, a
  /// pool-backed execution interposes a parallel intermediate merge level.
  static constexpr int kMergeFanIn = 8;

 private:
  /// One input of the k-way merge: the head row of one sorted run.
  struct MergeSource {
    Row row;
    Row key;  // precomputed sort-key tuple for `row`
    bool valid = false;
  };

  void Materialize(ExecContext* ctx);
  /// Pool-backed materialization: parallel run formation plus the two-level
  /// merge. Reached only when both a WorkerPool and a SpillManager are
  /// attached; byte-identical output to the serial path at every pool size.
  void MaterializeParallel(ExecContext* ctx, WorkerPool* pool);
  /// Reduces runs_ to at most kMergeFanIn by having workers merge contiguous
  /// run groups into "sort.merge" intermediate runs, repeating if needed.
  bool MergeRunsParallel(ExecContext* ctx, WorkerPool* pool);
  /// Worker-side body of one intermediate merge: a stable k-way merge of
  /// `sources` into `dest` against the task's context.
  void MergeRunsTask(TaskContext* tc, const std::vector<SpillRun*>& sources,
                     SpillRun* dest) const;
  /// Sorts `*rows` in place by keys_ (stable).
  void SortRows(std::vector<Row>* rows) const;
  Row MakeKey(const Row& row) const;
  /// Strict "a sorts before b" over precomputed key tuples.
  bool KeyLess(const Row& a, const Row& b) const;
  /// Sorts the in-memory buffer and flushes it as one spill run.
  bool SpillBuffer(ExecContext* ctx);
  /// Refills merge source `i` from its run (invalidates it at end of run).
  bool FillSource(ExecContext* ctx, size_t i);
  bool NextMerged(ExecContext* ctx, Row* out);

  OperatorPtr child_;
  std::vector<SortKey> keys_;

  bool materialized_ = false;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
  uint64_t charged_ = 0;  // rows charged to the context's buffer budget

  // External-sort state (empty/false when the input fit in memory). The row
  // counters are query-thread-only: worker tasks report theirs through the
  // fold, so FillProgressState never reads a SpillRun a task may be writing.
  std::vector<SpillRunPtr> runs_;
  std::vector<MergeSource> merge_;
  bool merging_ = false;
  uint64_t spilled_rows_ = 0;  // rows written across all runs (intermediates too)
  uint64_t input_spilled_rows_ = 0;  // input rows in level-0 runs (exact count)
};

}  // namespace qprog

#endif  // QPROG_EXEC_SORT_H_
