// Sort: the blocking order-by operator (also used beneath merge joins and
// stream aggregates). Consumes its whole input on first Next, then emits.

#ifndef QPROG_EXEC_SORT_H_
#define QPROG_EXEC_SORT_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "expr/expr.h"

namespace qprog {

/// One sort key. NULLs order lowest (first under ascending).
struct SortKey {
  ExprPtr expr;
  bool descending = false;

  SortKey() = default;
  SortKey(ExprPtr e, bool desc = false)  // NOLINT(runtime/explicit)
      : expr(std::move(e)), descending(desc) {}
};

class Sort : public PhysicalOperator {
 public:
  Sort(OperatorPtr child, std::vector<SortKey> keys);

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kSort; }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  size_t num_children() const override { return 1; }
  PhysicalOperator* child(size_t) override { return child_.get(); }
  std::string label() const override;
  void FillProgressState(const ExecContext& ctx,
                         ProgressState* state) const override;

 private:
  void Materialize(ExecContext* ctx);

  OperatorPtr child_;
  std::vector<SortKey> keys_;

  bool materialized_ = false;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
  uint64_t charged_ = 0;  // rows charged to the context's buffer budget
};

}  // namespace qprog

#endif  // QPROG_EXEC_SORT_H_
