// Sort: the blocking order-by operator (also used beneath merge joins and
// stream aggregates). Consumes its whole input on first Next, then emits.
//
// Memory-adaptive: with a SpillManager attached, a buffer that would exceed
// the guard's soft budget is sorted and flushed to a spill run, and once any
// run exists the final emit phase becomes a k-way merge of sorted runs read
// back from disk (classic external run-merge sort). Without a manager — or
// without a guard — behavior is the original in-memory sort.

#ifndef QPROG_EXEC_SORT_H_
#define QPROG_EXEC_SORT_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/spill.h"
#include "expr/expr.h"

namespace qprog {

/// One sort key. NULLs order lowest (first under ascending).
struct SortKey {
  ExprPtr expr;
  bool descending = false;

  SortKey() = default;
  SortKey(ExprPtr e, bool desc = false)  // NOLINT(runtime/explicit)
      : expr(std::move(e)), descending(desc) {}
};

class Sort : public PhysicalOperator {
 public:
  Sort(OperatorPtr child, std::vector<SortKey> keys);

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kSort; }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  size_t num_children() const override { return 1; }
  PhysicalOperator* child(size_t) override { return child_.get(); }
  std::string label() const override;
  void FillProgressState(const ExecContext& ctx,
                         ProgressState* state) const override;

  /// True once this execution flushed at least one spill run.
  bool spilled() const { return !runs_.empty(); }

 private:
  /// One input of the k-way merge: the head row of one sorted run.
  struct MergeSource {
    Row row;
    Row key;  // precomputed sort-key tuple for `row`
    bool valid = false;
  };

  void Materialize(ExecContext* ctx);
  /// Sorts `*rows` in place by keys_ (stable).
  void SortRows(std::vector<Row>* rows) const;
  Row MakeKey(const Row& row) const;
  /// Strict "a sorts before b" over precomputed key tuples.
  bool KeyLess(const Row& a, const Row& b) const;
  /// Sorts the in-memory buffer and flushes it as one spill run.
  bool SpillBuffer(ExecContext* ctx);
  /// Refills merge source `i` from its run (invalidates it at end of run).
  bool FillSource(ExecContext* ctx, size_t i);
  bool NextMerged(ExecContext* ctx, Row* out);

  OperatorPtr child_;
  std::vector<SortKey> keys_;

  bool materialized_ = false;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
  uint64_t charged_ = 0;  // rows charged to the context's buffer budget

  // External-sort state (empty/false when the input fit in memory).
  std::vector<SpillRunPtr> runs_;
  std::vector<MergeSource> merge_;
  bool merging_ = false;
  uint64_t spilled_rows_ = 0;  // rows written across all runs
  uint64_t reread_rows_ = 0;   // rows read back by the merge so far
};

}  // namespace qprog

#endif  // QPROG_EXEC_SORT_H_
