// ProgressMonitor: executes a plan while sampling every registered estimator
// at work-based checkpoints, then scores them against the true progress
// (knowable only once the query finishes). This is the experimental harness
// behind every figure and table of the paper's evaluation.

#ifndef QPROG_CORE_MONITOR_H_
#define QPROG_CORE_MONITOR_H_

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/estimators.h"
#include "exec/execution_config.h"
#include "exec/fault_injector.h"
#include "exec/query_guard.h"
#include "obs/metrics_registry.h"
#include "obs/telemetry.h"

namespace qprog {

class SpillManager;
class WorkerPool;
class EtaModel;

/// One sampling instant.
struct Checkpoint;

/// Everything a ProgressMonitor borrows, gathered into one construction-time
/// options struct. All pointers are borrowed and may be null; the listener
/// may be empty. This is the only way to wire the environment: the options
/// are fixed at construction, so a monitor's borrowed pointers never change
/// mid-lifetime.
/// The engine-level knobs (worker_pool, batch_size, partitions) live on the
/// shared ExecutionConfig base (exec/execution_config.h) — one spine that
/// MonitorOptions, SessionOptions, and ServerOptions all embed, so adding an
/// engine knob is a one-struct change.
struct MonitorOptions : ExecutionConfig {
  /// Resource guard enforced during monitored runs: cancellation is honored
  /// within one checkpoint interval, and budget / deadline violations end
  /// the run with a partial report.
  QueryGuard* guard = nullptr;
  /// Fault injector, Reset() at the start of every run so a given seed
  /// replays the same fault schedule.
  FaultInjector* fault_injector = nullptr;
  /// Spill manager: blocking operators that would overflow the guard's soft
  /// buffered-row budget spill to disk instead of aborting.
  SpillManager* spill_manager = nullptr;
  /// Telemetry collector: operator stats, bounds history, and — with a
  /// TraceSink — the full replayable event stream.
  TelemetryCollector* telemetry = nullptr;
  /// Metrics registry: checkpoint latency and estimator-cost histograms.
  MetricsRegistry* metrics_registry = nullptr;
  /// Wall-clock ETA model (obs/eta_model.h): when attached, every checkpoint
  /// additionally carries a sanitized [eta_lo, eta, eta_hi] band, and — if
  /// the model's trace option is on — a v4 kEtaSample trace event.
  EtaModel* eta_model = nullptr;
  /// Called after each checkpoint is recorded — the hook a kill-or-wait
  /// policy uses to watch estimates and, e.g., RequestCancel() on the guard.
  std::function<void(const Checkpoint&)> checkpoint_listener;
};
struct Checkpoint {
  uint64_t work = 0;            // Curr
  double true_progress = 0;     // work / true total(Q), filled in after the run
  double work_lb = 0;           // bounds snapshot
  double work_ub = 0;
  std::vector<double> estimates;  // parallel to ProgressReport::names
  /// Wall-clock ETA band (seconds) sampled by an attached EtaModel
  /// (obs/eta_model.h). Sanitized: either all three are finite with
  /// 0 <= eta_lo <= eta <= eta_hi, or all three are +infinity — no model
  /// attached, or no rate sample yet. Renderers show "--" for infinity.
  double eta_seconds = std::numeric_limits<double>::infinity();
  double eta_lo_seconds = std::numeric_limits<double>::infinity();
  double eta_hi_seconds = std::numeric_limits<double>::infinity();
};

/// Why a monitored run stopped. Everything except kCompleted describes an
/// execution-guardrail abort; the report then carries the checkpoints
/// collected up to the stop plus the aborting Status.
enum class TerminationReason {
  kCompleted,
  kCancelled,
  kDeadlineExceeded,
  kBudgetExhausted,  // work or buffered-row budget (kResourceExhausted)
  kFault,            // injected or real operator failure
};

const char* TerminationReasonToString(TerminationReason reason);

/// Maps an execution Status to the termination it represents.
TerminationReason TerminationFromStatus(const Status& status);

/// Error summary for one estimator over a run. Absolute errors are fractions
/// of total progress (the paper's tables report them as percentages); ratio
/// errors follow Section 2.5 (max(est/true, true/est)).
struct EstimatorMetrics {
  double max_abs_err = 0;
  double avg_abs_err = 0;
  double max_ratio_err = 1;
  double avg_ratio_err = 1;
};

/// Per-node cardinality outcome of one monitored run — the raw material of
/// cross-run priors (obs/cross_run_registry.h). Filled by the monitor at run
/// end from the execution counters, so consumers need no access to the
/// internal ExecContext.
struct NodeRunStat {
  int node_id = -1;
  uint64_t actual_rows = 0;    // rows handed to the parent
  double estimated_rows = -1;  // planner estimate; < 0 when unknown
  uint64_t next_ns = 0;        // inclusive getnext time (0 without telemetry)
};

struct ProgressReport {
  std::vector<std::string> names;       // estimator names
  std::vector<Checkpoint> checkpoints;  // in work order
  uint64_t total_work = 0;              // total(Q); for an aborted run, the
                                        // work performed up to the stop
  uint64_t root_rows = 0;               // rows the query returned
  uint64_t spill_work = 0;              // spill I/O units performed
  /// High-water mark of buffered rows over the run — the query's observed
  /// peak memory in the engine's buffered-row proxy. Together with the
  /// template fingerprint this is the admission predictor's training signal
  /// (obs/workload_stats.h).
  uint64_t peak_buffered_rows = 0;
  double mu = 0;                        // total(Q) / sum of scanned leaves
                                        // (0 when the run did not complete)
  double scanned_leaf_cardinality = 0;

  /// Latest wall-clock ETA band (seconds), copied from the last checkpoint —
  /// including on cancellation/deadline partial reports, where it is the
  /// band claimed at the last sample before the stop. Invariant (enforced by
  /// EtaModel sanitization, unit-tested): 0 <= eta_lo <= eta <= eta_hi, all
  /// finite once one checkpoint has landed with a model attached, all
  /// +infinity otherwise.
  double eta_seconds = std::numeric_limits<double>::infinity();
  double eta_lo_seconds = std::numeric_limits<double>::infinity();
  double eta_hi_seconds = std::numeric_limits<double>::infinity();

  /// Structural fingerprint of the executed plan (PlanSignature); guards
  /// cross-run priors against plan-shape drift within a template.
  uint64_t plan_signature = 0;
  /// Per-node cardinality outcomes, indexed by node id.
  std::vector<NodeRunStat> node_stats;

  /// How the run ended. On an abort, `checkpoints` holds everything sampled
  /// before the stop and `true_progress` stays 0 (the true total is
  /// unknowable for an unfinished query).
  TerminationReason termination = TerminationReason::kCompleted;
  Status status;  // OK iff termination == kCompleted

  bool completed() const { return termination == TerminationReason::kCompleted; }

  /// Metrics for estimator `i` (index into `names`).
  EstimatorMetrics Metrics(size_t i) const;

  /// Index of `name` in `names`, or -1.
  int FindEstimator(const std::string& name) const;

  /// Tab-separated dump: work, true progress, then one column per estimator.
  std::string ToTsv() const;
};

class ProgressMonitor {
 public:
  /// The monitor borrows `plan` and everything in `options`; the estimators
  /// are owned.
  ProgressMonitor(PhysicalPlan* plan,
                  std::vector<std::unique_ptr<ProgressEstimator>> estimators,
                  MonitorOptions options = MonitorOptions());

  /// Convenience: monitor with the named estimators (must all resolve;
  /// parameterized specs like "hybrid:2.5" are accepted).
  static ProgressMonitor WithEstimators(PhysicalPlan* plan,
                                        const std::vector<std::string>& names,
                                        MonitorOptions options = MonitorOptions());

  /// Executes the plan to completion (or until a guardrail stops it),
  /// checkpointing every `checkpoint_interval` units of work (getnext
  /// calls). Every estimate in the report is sanitized into [0, 1] — a
  /// misbehaving estimator cannot leak NaN or out-of-range values.
  ProgressReport Run(uint64_t checkpoint_interval);

  /// Executes with roughly `approx_checkpoints` samples: performs a throwaway
  /// full execution to learn total(Q), then the monitored run. Requires a
  /// rewindable plan (PlanSupportsRewind); otherwise returns an empty report
  /// whose status is kInvalidArgument. If a guardrail stops the learning
  /// run, its partial report (without checkpoints) is returned.
  ProgressReport RunWithApproxCheckpoints(size_t approx_checkpoints);

 private:
  ProgressReport MakeAbortedReport(const ExecContext& ctx) const;

  /// Emits the kRunEnd trace event (no-op without telemetry).
  void EmitRunEnd(const ProgressReport& report);

  PhysicalPlan* plan_;
  std::vector<std::unique_ptr<ProgressEstimator>> estimators_;
  MonitorOptions options_;
};

}  // namespace qprog

#endif  // QPROG_CORE_MONITOR_H_
