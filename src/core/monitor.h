// ProgressMonitor: executes a plan while sampling every registered estimator
// at work-based checkpoints, then scores them against the true progress
// (knowable only once the query finishes). This is the experimental harness
// behind every figure and table of the paper's evaluation.

#ifndef QPROG_CORE_MONITOR_H_
#define QPROG_CORE_MONITOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimators.h"

namespace qprog {

/// One sampling instant.
struct Checkpoint {
  uint64_t work = 0;            // Curr
  double true_progress = 0;     // work / total(Q), filled in after the run
  double work_lb = 0;           // bounds snapshot
  double work_ub = 0;
  std::vector<double> estimates;  // parallel to ProgressReport::names
};

/// Error summary for one estimator over a run. Absolute errors are fractions
/// of total progress (the paper's tables report them as percentages); ratio
/// errors follow Section 2.5 (max(est/true, true/est)).
struct EstimatorMetrics {
  double max_abs_err = 0;
  double avg_abs_err = 0;
  double max_ratio_err = 1;
  double avg_ratio_err = 1;
};

struct ProgressReport {
  std::vector<std::string> names;       // estimator names
  std::vector<Checkpoint> checkpoints;  // in work order
  uint64_t total_work = 0;              // total(Q)
  uint64_t root_rows = 0;               // rows the query returned
  double mu = 0;                        // total(Q) / sum of scanned leaves
  double scanned_leaf_cardinality = 0;

  /// Metrics for estimator `i` (index into `names`).
  EstimatorMetrics Metrics(size_t i) const;

  /// Index of `name` in `names`, or -1.
  int FindEstimator(const std::string& name) const;

  /// Tab-separated dump: work, true progress, then one column per estimator.
  std::string ToTsv() const;
};

class ProgressMonitor {
 public:
  /// The monitor borrows `plan`; the estimators are owned.
  ProgressMonitor(PhysicalPlan* plan,
                  std::vector<std::unique_ptr<ProgressEstimator>> estimators);

  /// Convenience: monitor with the named estimators (must all resolve).
  static ProgressMonitor WithEstimators(PhysicalPlan* plan,
                                        const std::vector<std::string>& names);

  /// Executes the plan to completion, checkpointing every
  /// `checkpoint_interval` units of work (getnext calls).
  ProgressReport Run(uint64_t checkpoint_interval);

  /// Executes with roughly `approx_checkpoints` samples: performs a throwaway
  /// full execution to learn total(Q), then the monitored run.
  ProgressReport RunWithApproxCheckpoints(size_t approx_checkpoints);

 private:
  PhysicalPlan* plan_;
  std::vector<std::unique_ptr<ProgressEstimator>> estimators_;
};

}  // namespace qprog

#endif  // QPROG_CORE_MONITOR_H_
