#include "core/bounds.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "exec/aggregate.h"
#include "exec/join.h"
#include "exec/scan.h"

namespace qprog {

namespace {

// Products of cardinalities can overflow anything sensible; bounds saturate
// here. (The safe estimator degrades gracefully: a huge UB just means a very
// conservative estimate, which is the paper's point about worst cases.)
constexpr double kCap = 1e18;

double CapMul(double a, double b) {
  if (a <= 0 || b <= 0) return 0;
  if (a > kCap / b) return kCap;
  return a * b;
}

double CapAdd(double a, double b) { return std::min(kCap, a + b); }

JoinType JoinTypeOf(const PhysicalOperator* op) {
  switch (op->kind()) {
    case OpKind::kNestedLoopsJoin:
      return static_cast<const NestedLoopsJoin*>(op)->join_type();
    case OpKind::kIndexNestedLoopsJoin:
      return static_cast<const IndexNestedLoopsJoin*>(op)->join_type();
    case OpKind::kHashJoin:
      return static_cast<const HashJoin*>(op)->join_type();
    default:
      return JoinType::kInner;
  }
}

class Walker {
 public:
  Walker(const ExecContext& ctx, std::vector<CardBounds>* out)
      : ctx_(ctx), out_(out) {}

  /// Computes bounds for `op`, records them in out_, and returns them.
  /// `under_limit`: an ancestor Limit may stop pulling, so lower bounds
  /// degrade to rows-produced-so-far. `rescan_remaining`: >= 0 when this
  /// subtree is the inner of a nested-loops join that may re-open it up to
  /// that many more times.
  CardBounds Visit(const PhysicalOperator* op, bool under_limit,
                   double rescan_remaining) {
    ProgressState s;
    op->FillProgressState(ctx_, &s);
    const double produced = static_cast<double>(s.rows_produced);
    CardBounds b;

    if (rescan_remaining >= 0) {
      // Re-executed subtree: only generic per-pass reasoning applies. Work
      // accumulates in the node counter across passes (for scans that is
      // rows examined, which can exceed single-pass production).
      for (size_t i = 0; i < op->num_children(); ++i) {
        Visit(op->child(i), under_limit, rescan_remaining);
      }
      double counted = Produced(op);
      b.lb = counted;
      b.ub = CapAdd(counted,
                    CapMul(rescan_remaining, StaticPerPassUpperBound(op)));
      return Record(op, under_limit, counted, b);
    }

    switch (op->kind()) {
      case OpKind::kSeqScan: {
        // Work bounds: every base row is examined exactly once, so the
        // node's total work is the table cardinality — known a priori from
        // the catalog (the heart of Section 5.2's LB >= sum of leaves).
        // Under a Limit the scan may stop early, degrading the lower bound
        // to rows examined so far.
        double examined = static_cast<double>(s.input_examined);
        double base = static_cast<double>(s.base_rows);
        CardBounds work;
        if (s.finished) {
          work.lb = work.ub = examined;
        } else {
          work.lb = under_limit ? examined : base;
          work.ub = base;
        }
        (*out_)[static_cast<size_t>(op->node_id())] = work;
        // Production bounds (what the parent will consume): exact for an
        // unfiltered scan; otherwise emitted-so-far plus remaining rows.
        if (s.finished) {
          b.lb = b.ub = produced;
        } else if (s.exact_total >= 0) {
          b.lb = under_limit ? produced : s.exact_total;
          b.ub = s.exact_total;
        } else {
          b.lb = produced;
          b.ub = produced + (base - examined);
        }
        b.lb = std::max(b.lb, produced);
        b.ub = std::max(b.ub, b.lb);
        return b;
      }
      case OpKind::kIndexSeek: {
        // A standalone (range-mode) seek; the INL inner seek is handled by
        // its parent join below and never reaches this path.
        if (s.finished) {
          b.lb = b.ub = produced;
        } else if (s.exact_total >= 0) {
          b.lb = b.ub = std::max(produced, s.exact_total);
        } else {
          b.lb = produced;
          b.ub = kCap;
        }
        break;
      }
      case OpKind::kFilter: {
        CardBounds c = Visit(op->child(0), under_limit, -1);
        if (s.finished) {
          b.lb = b.ub = produced;
        } else {
          b.lb = produced;
          b.ub = produced + RemainingInput(op->child(0), c);
        }
        break;
      }
      case OpKind::kProject: {
        CardBounds c = Visit(op->child(0), under_limit, -1);
        if (s.finished) {
          b.lb = b.ub = produced;
        } else {
          b.lb = std::max(produced, c.lb);
          b.ub = std::max(produced, c.ub);
        }
        break;
      }
      case OpKind::kLimit: {
        CardBounds c = Visit(op->child(0), /*under_limit=*/true, -1);
        if (s.finished) {
          b.lb = b.ub = produced;
        } else {
          b.lb = produced;
          b.ub = std::min(produced + static_cast<double>(s.limit_remaining),
                          std::max(produced, c.ub));
        }
        break;
      }
      case OpKind::kNestedLoopsJoin: {
        CardBounds outer = Visit(op->child(0), under_limit, -1);
        double outer_produced = ProductionOf(op->child(0));
        double remaining_outer = RemainingInput(op->child(0), outer);
        double per_pass = StaticPerPassUpperBound(op->child(1));
        Visit(op->child(1), under_limit, remaining_outer);
        JoinType jt = JoinTypeOf(op);
        if (s.finished) {
          b.lb = b.ub = produced;
          break;
        }
        b.lb = produced;
        switch (jt) {
          case JoinType::kInner:
            b.ub = CapAdd(produced, CapMul(remaining_outer, per_pass));
            if (op->is_linear()) {
              b.ub = std::min(b.ub, std::max(produced,
                                             std::max(outer.ub, per_pass)));
            }
            break;
          case JoinType::kLeftOuter:
            b.lb = produced + std::max(0.0, outer.lb - outer_produced);
            b.ub = CapAdd(produced,
                          CapMul(remaining_outer, std::max(1.0, per_pass)));
            break;
          case JoinType::kLeftSemi:
          case JoinType::kLeftAnti:
            b.ub = produced + remaining_outer;
            break;
        }
        break;
      }
      case OpKind::kIndexNestedLoopsJoin: {
        CardBounds outer = Visit(op->child(0), under_limit, -1);
        double outer_produced = ProductionOf(op->child(0));
        double remaining_outer = RemainingInput(op->child(0), outer);
        const PhysicalOperator* seek = op->child(1);
        ProgressState ss;
        seek->FillProgressState(ctx_, &ss);
        double seek_produced = static_cast<double>(ss.rows_produced);
        double per_probe = static_cast<double>(ss.max_per_probe);

        CardBounds sb;
        if (s.finished) {
          sb.lb = sb.ub = seek_produced;
        } else {
          sb.lb = seek_produced;
          sb.ub = CapAdd(seek_produced, CapMul(remaining_outer, per_probe));
          if (op->is_linear()) {
            sb.ub = std::min(
                sb.ub, std::max(seek_produced,
                                std::max(outer.ub,
                                         static_cast<double>(ss.base_rows))));
          }
        }
        Record(seek, under_limit, seek_produced, sb);

        JoinType jt = JoinTypeOf(op);
        if (s.finished) {
          b.lb = b.ub = produced;
          break;
        }
        b.lb = produced;
        switch (jt) {
          case JoinType::kInner:
            b.ub = produced + RemainingInput(seek, sb);
            break;
          case JoinType::kLeftOuter:
            b.lb = produced + std::max(0.0, outer.lb - outer_produced);
            b.ub = CapAdd(produced,
                          CapMul(remaining_outer, std::max(1.0, per_probe)));
            if (op->is_linear()) {
              b.ub = std::min(
                  b.ub, std::max(produced,
                                 std::max(outer.ub,
                                          static_cast<double>(ss.base_rows))));
              b.ub = std::max(b.ub, b.lb);
            }
            break;
          case JoinType::kLeftSemi:
          case JoinType::kLeftAnti:
            b.ub = produced + remaining_outer;
            break;
        }
        break;
      }
      case OpKind::kHashJoin: {
        CardBounds probe = Visit(op->child(0), under_limit, -1);
        // The build side is fully consumed before the first output.
        CardBounds build = Visit(op->child(1), /*under_limit=*/false, -1);
        double probe_produced = ProductionOf(op->child(0));
        JoinType jt = JoinTypeOf(op);
        if (s.finished) {
          b.lb = b.ub = produced;
          break;
        }
        if (!s.build_done) {
          b.lb = produced;
          double matches_ub = op->is_linear() ? std::max(probe.ub, build.ub)
                                              : CapMul(probe.ub, build.ub);
          switch (jt) {
            case JoinType::kInner:
              b.ub = matches_ub;
              break;
            case JoinType::kLeftOuter:
              b.lb = std::max(produced, probe.lb);
              b.ub = CapAdd(matches_ub, probe.ub);
              break;
            case JoinType::kLeftSemi:
            case JoinType::kLeftAnti:
              b.ub = probe.ub;
              break;
          }
          b.ub = std::max(b.ub, b.lb);
          break;
        }
        // Build finished: the key multiset is known.
        double remaining_probe = RemainingInput(op->child(0), probe);
        double m = static_cast<double>(s.max_multiplicity);
        b.lb = produced;
        switch (jt) {
          case JoinType::kInner:
            b.ub = CapAdd(produced, CapMul(remaining_probe, m));
            if (op->is_linear()) {
              b.ub = std::min(b.ub,
                              std::max(produced, std::max(probe.ub, build.ub)));
            }
            break;
          case JoinType::kLeftOuter:
            b.lb = produced + std::max(0.0, probe.lb - probe_produced);
            b.ub = CapAdd(produced, CapMul(remaining_probe, std::max(1.0, m)));
            b.ub = std::max(b.ub, b.lb);
            break;
          case JoinType::kLeftSemi:
            b.ub = produced + (m > 0 ? remaining_probe : 0.0);
            break;
          case JoinType::kLeftAnti:
            if (s.build_rows == 0) {
              b.lb = produced + std::max(0.0, probe.lb - probe_produced);
            }
            b.ub = produced + remaining_probe;
            b.ub = std::max(b.ub, b.lb);
            break;
        }
        break;
      }
      case OpKind::kMergeJoin: {
        CardBounds left = Visit(op->child(0), under_limit, -1);
        CardBounds right = Visit(op->child(1), under_limit, -1);
        if (s.finished) {
          b.lb = b.ub = produced;
          break;
        }
        b.lb = produced;
        b.ub = op->is_linear() ? std::max(left.ub, right.ub)
                               : CapMul(left.ub, right.ub);
        b.ub = std::max(b.ub, produced);
        break;
      }
      case OpKind::kSort: {
        // A sort drains its input completely before emitting its first row,
        // so an ancestor Limit cannot cut the subtree below it short.
        CardBounds c = Visit(op->child(0), /*under_limit=*/false, -1);
        if (s.finished) {
          b.lb = b.ub = produced;
        } else if (s.build_done) {
          b.lb = b.ub = static_cast<double>(s.build_rows);
        } else {
          b.lb = std::max(produced, c.lb);
          b.ub = std::max(produced, c.ub);
        }
        break;
      }
      case OpKind::kHashAggregate:
      case OpKind::kStreamAggregate: {
        // The hash aggregate's build drains its input regardless of limits;
        // a stream aggregate passes demand through, so it propagates.
        bool child_under_limit =
            op->kind() == OpKind::kStreamAggregate ? under_limit : false;
        CardBounds c = Visit(op->child(0), child_under_limit, -1);
        double groups = static_cast<double>(s.groups_so_far);
        if (s.finished) {
          b.lb = b.ub = produced;
        } else if (s.scalar_aggregate) {
          b.lb = std::max(produced, 1.0);
          b.ub = 1.0;
        } else if (s.build_done && op->kind() == OpKind::kHashAggregate) {
          b.lb = b.ub = groups;
        } else {
          // Each spilled-but-unread row may still open a fresh group, so it
          // keeps the upper bound honest even after the child is drained.
          // spill_rows_unread is a true row count; the old work-unit pending
          // counter overstated the unseen rows by the unfinished write pass.
          double unread = static_cast<double>(s.spill_rows_unread);
          b.lb = std::max(produced, groups);
          b.ub = std::min(
              CapAdd(groups + RemainingInput(op->child(0), c), unread),
              std::max(c.ub, groups));
        }
        break;
      }
      case OpKind::kExchange: {
        // A repartition boundary: no consumer row exists before every
        // producer partition finished, so the exchange drains all children
        // regardless of limits above it. Its production is the sum of its
        // producers' — per-partition bounds sum at the exchange boundary,
        // which is what keeps dne's driver totals and [LB, UB] exact for
        // partitioned plans. At fold-time checkpoints each folded child is
        // final (lb == ub == its production), so the summed lower bound
        // never dips below rows already counted.
        double sum_lb = 0;
        double sum_ub = 0;
        for (size_t i = 0; i < op->num_children(); ++i) {
          CardBounds c = Visit(op->child(i), /*under_limit=*/false, -1);
          sum_lb = CapAdd(sum_lb, c.lb);
          sum_ub = CapAdd(sum_ub, c.ub);
        }
        if (s.finished) {
          b.lb = b.ub = produced;
        } else if (s.build_done) {
          // Every routed row is re-emitted exactly once.
          b.lb = b.ub = static_cast<double>(s.build_rows);
        } else {
          b.lb = std::max(produced, sum_lb);
          b.ub = std::max(produced, sum_ub);
        }
        break;
      }
    }
    return Record(op, under_limit, produced, b);
  }

 private:
  double Produced(const PhysicalOperator* op) const {
    return static_cast<double>(ctx_.rows_produced(op->node_id()));
  }

  // Rows the operator has handed to its parent. Identical to the work
  // counter except for scans, whose counter tallies examined rows.
  double ProductionOf(const PhysicalOperator* op) const {
    ProgressState st;
    op->FillProgressState(ctx_, &st);
    return static_cast<double>(st.rows_produced);
  }

  // Upper bound on the rows the parent will still receive from `child`.
  // Checkpoints fire from inside a child's Emit, so the child's counter can
  // include one row its parent has not processed yet ("in flight"); that row
  // may still expand in the parent, hence the +1 while the child is live.
  double RemainingInput(const PhysicalOperator* child,
                        const CardBounds& cb) const {
    ProgressState cs;
    child->FillProgressState(ctx_, &cs);
    // cs.rows_produced is the child's *production* (scans report emitted
    // rows here, not examined rows), matching cb's production bounds.
    double remaining =
        std::max(0.0, cb.ub - static_cast<double>(cs.rows_produced));
    if (!cs.finished) remaining += 1;
    return remaining;
  }

  CardBounds Record(const PhysicalOperator* op, bool under_limit,
                    double produced, CardBounds b) {
    if (under_limit) b.lb = produced;  // an ancestor may stop pulling
    b.lb = std::max(b.lb, produced);
    b.ub = std::max(b.ub, b.lb);
    (*out_)[static_cast<size_t>(op->node_id())] = b;
    return b;
  }

  const ExecContext& ctx_;
  std::vector<CardBounds>* out_;
};

}  // namespace

BoundsTracker::BoundsTracker(const PhysicalPlan* plan) : plan_(plan) {
  QPROG_CHECK(plan != nullptr);
}

PlanBounds BoundsTracker::Compute(const ExecContext& ctx) const {
  PlanBounds bounds;
  bounds.node_bounds.resize(plan_->num_nodes());
  Walker walker(ctx, &bounds.node_bounds);
  walker.Visit(plan_->root(), /*under_limit=*/false, /*rescan_remaining=*/-1);
  for (const PhysicalOperator* op : plan_->nodes()) {
    if (op->is_root()) continue;
    const CardBounds& b = bounds.node_bounds[static_cast<size_t>(op->node_id())];
    bounds.work_lb = CapAdd(bounds.work_lb, b.lb);
    bounds.work_ub = CapAdd(bounds.work_ub, b.ub);
  }
  // Spill passes revise total(Q) upward mid-query: work already spent on
  // spill I/O plus the guaranteed re-read of every spilled-but-unread row.
  // Unlike getnext work, spill work counts at every node including the root
  // (a spilling root sort really performs extra passes), and it lands in
  // both bounds — it is work that will happen, not work that might.
  for (const PhysicalOperator* op : plan_->nodes()) {
    ProgressState s;
    op->FillProgressState(ctx, &s);
    double spill =
        static_cast<double>(s.spill_work_done + s.spill_rows_pending);
    if (spill > 0) {
      bounds.work_lb = CapAdd(bounds.work_lb, spill);
      bounds.work_ub = CapAdd(bounds.work_ub, spill);
    }
  }
  return bounds;
}

double StaticPerPassUpperBound(const PhysicalOperator* op) {
  switch (op->kind()) {
    case OpKind::kSeqScan:
      // Partition-relative: a range-split scan's per-pass maximum is its
      // range size (== the table cardinality for an unpartitioned scan).
      return static_cast<double>(
          static_cast<const SeqScan*>(op)->partition_rows());
    case OpKind::kIndexSeek: {
      const auto* seek = static_cast<const IndexSeek*>(op);
      return static_cast<double>(seek->index()->num_entries());
    }
    case OpKind::kFilter:
    case OpKind::kProject:
    case OpKind::kSort:
      return StaticPerPassUpperBound(op->child(0));
    case OpKind::kLimit:
      return StaticPerPassUpperBound(op->child(0));
    case OpKind::kHashAggregate:
    case OpKind::kStreamAggregate:
      return std::max(1.0, StaticPerPassUpperBound(op->child(0)));
    case OpKind::kExchange: {
      double sum = 0;
      for (size_t i = 0; i < op->num_children(); ++i) {
        sum = CapAdd(sum, StaticPerPassUpperBound(op->child(i)));
      }
      return sum;
    }
    case OpKind::kNestedLoopsJoin:
    case OpKind::kIndexNestedLoopsJoin:
    case OpKind::kHashJoin:
    case OpKind::kMergeJoin: {
      double a = StaticPerPassUpperBound(op->child(0));
      double b = StaticPerPassUpperBound(op->child(1));
      JoinType jt = JoinTypeOf(op);
      if (jt == JoinType::kLeftSemi || jt == JoinType::kLeftAnti) return a;
      if (jt == JoinType::kLeftOuter) return CapMul(a, std::max(1.0, b));
      if (op->is_linear()) return std::max(a, b);
      return CapMul(a, b);
    }
  }
  return kCap;
}

namespace {

void SumScannedLeaves(const PhysicalOperator* op, double* sum) {
  switch (op->kind()) {
    case OpKind::kSeqScan:
      // Partition-relative: the partitioned plan's leaves sum back to the
      // serial plan's scanned cardinality.
      *sum += static_cast<double>(
          static_cast<const SeqScan*>(op)->partition_rows());
      return;
    case OpKind::kIndexSeek:
      // Range-mode seeks are scanned once; count the index entries as the
      // (conservative) leaf cardinality. Equality seeks under INL joins are
      // excluded by their parent below.
      *sum += static_cast<double>(
          static_cast<const IndexSeek*>(op)->index()->num_entries());
      return;
    case OpKind::kNestedLoopsJoin:
    case OpKind::kIndexNestedLoopsJoin:
      // The inner input is probed/rescanned, not scanned exactly once.
      SumScannedLeaves(op->child(0), sum);
      return;
    default:
      for (size_t i = 0; i < op->num_children(); ++i) {
        SumScannedLeaves(op->child(i), sum);
      }
      return;
  }
}

}  // namespace

double ScannedLeafCardinality(const PhysicalPlan& plan) {
  double sum = 0;
  SumScannedLeaves(plan.root(), &sum);
  return sum;
}

}  // namespace qprog
