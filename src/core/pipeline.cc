#include "core/pipeline.h"

#include "common/macros.h"
#include "common/strings.h"
#include "core/bounds.h"
#include "exec/scan.h"

namespace qprog {

namespace {

// Adds every node of `op`'s subtree to `pipeline` as a member only (no
// drivers). Used for NL/INL inner inputs, which are (re)driven by the outer
// rows rather than by their own leaves.
void AddSubtreeAsMembers(const PhysicalOperator* op, Pipeline* pipeline) {
  pipeline->members.push_back(op);
  for (size_t i = 0; i < op->num_children(); ++i) {
    AddSubtreeAsMembers(op->child(i), pipeline);
  }
}

// `current` is the index (into *out) of the pipeline `op` belongs to.
void Decompose(const PhysicalOperator* op, size_t current,
               std::vector<Pipeline>* out) {
  (*out)[current].members.push_back(op);
  switch (op->kind()) {
    case OpKind::kSeqScan:
    case OpKind::kIndexSeek:
      (*out)[current].drivers.push_back(op);
      return;
    case OpKind::kFilter:
    case OpKind::kProject:
    case OpKind::kLimit:
    case OpKind::kStreamAggregate:
      Decompose(op->child(0), current, out);
      return;
    case OpKind::kSort:
    case OpKind::kHashAggregate: {
      // Blocking: this node is the source (driver) feeding the current
      // pipeline; its input subtree forms a fresh pipeline.
      (*out)[current].drivers.push_back(op);
      out->push_back(Pipeline{});
      Decompose(op->child(0), out->size() - 1, out);
      return;
    }
    case OpKind::kHashJoin: {
      // Probe side streams through this pipeline; build side is blocking.
      out->push_back(Pipeline{});
      size_t build_pipeline = out->size() - 1;
      Decompose(op->child(1), build_pipeline, out);
      Decompose(op->child(0), current, out);
      return;
    }
    case OpKind::kMergeJoin:
      // Both inputs stream; a two-driver pipeline (paper footnote 1).
      Decompose(op->child(0), current, out);
      Decompose(op->child(1), current, out);
      return;
    case OpKind::kNestedLoopsJoin:
    case OpKind::kIndexNestedLoopsJoin:
      Decompose(op->child(0), current, out);
      AddSubtreeAsMembers(op->child(1), &(*out)[current]);
      return;
    case OpKind::kExchange: {
      // A repartition boundary is blocking: the exchange drives the current
      // pipeline, and each producer partition's subtree is its own pipeline
      // (they run concurrently on the pool, but progress accounting treats
      // them as the data-parallel pieces they are).
      (*out)[current].drivers.push_back(op);
      for (size_t i = 0; i < op->num_children(); ++i) {
        out->push_back(Pipeline{});
        Decompose(op->child(i), out->size() - 1, out);
      }
      return;
    }
  }
}

}  // namespace

std::vector<Pipeline> DecomposePipelines(const PhysicalPlan& plan) {
  std::vector<Pipeline> pipelines;
  pipelines.push_back(Pipeline{});
  Decompose(plan.root(), 0, &pipelines);
  return pipelines;
}

DriverStatus ComputeDriverStatus(const PhysicalOperator* driver,
                                 const ExecContext& ctx) {
  DriverStatus status;
  status.node = driver;
  ProgressState s;
  driver->FillProgressState(ctx, &s);

  if (driver->kind() == OpKind::kSeqScan) {
    // "Fraction of the tuples read at the input node" (Definition 1): for a
    // scan the natural measure is rows examined over the (exactly known)
    // table cardinality, predicate or not.
    status.rows_done = static_cast<double>(s.input_examined);
    status.rows_total = static_cast<double>(s.base_rows);
    status.total_exact = true;
    return status;
  }

  status.rows_done = static_cast<double>(s.rows_produced);
  if (s.finished) {
    status.rows_total = static_cast<double>(s.rows_produced);
    status.total_exact = true;
  } else if (s.scalar_aggregate) {
    // A grouping-free aggregate produces exactly one row, knowable a priori.
    status.rows_total = 1;
    status.total_exact = true;
  } else if (s.build_done &&
             (driver->kind() == OpKind::kSort ||
              driver->kind() == OpKind::kHashAggregate ||
              driver->kind() == OpKind::kExchange)) {
    status.rows_total =
        static_cast<double>(driver->kind() == OpKind::kHashAggregate
                                ? s.groups_so_far
                                : s.build_rows);
    status.total_exact = true;
  } else if (s.exact_total >= 0) {
    status.rows_total = s.exact_total;
    status.total_exact = true;
  } else if (driver->estimated_rows() >= 0) {
    status.rows_total = std::max(driver->estimated_rows(), status.rows_done);
  } else if (s.base_rows > 0) {
    status.rows_total =
        std::max(static_cast<double>(s.base_rows), status.rows_done);
  } else {
    status.rows_total =
        std::max(StaticPerPassUpperBound(driver), status.rows_done);
  }
  if (status.rows_total <= 0) status.rows_total = 1;
  return status;
}

std::string PipelinesToString(const std::vector<Pipeline>& pipelines) {
  std::string out;
  for (size_t i = 0; i < pipelines.size(); ++i) {
    out += StringPrintf("pipeline %zu: drivers={", i);
    std::vector<std::string> names;
    for (const PhysicalOperator* d : pipelines[i].drivers) {
      names.push_back(StringPrintf("#%d %s", d->node_id(), d->label().c_str()));
    }
    out += JoinStrings(names, ", ") + "} members={";
    names.clear();
    for (const PhysicalOperator* m : pipelines[i].members) {
      names.push_back(StringPrintf("#%d", m->node_id()));
    }
    out += JoinStrings(names, ",") + "}\n";
  }
  return out;
}

}  // namespace qprog
