#include "core/estimators.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/macros.h"
#include "common/strings.h"

namespace qprog {

namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

double DneEstimator::Estimate(const ProgressContext& pc) const {
  QPROG_CHECK(pc.pipelines != nullptr && pc.exec != nullptr);
  double done = 0;
  double total = 0;
  for (const Pipeline& p : *pc.pipelines) {
    for (const PhysicalOperator* d : p.drivers) {
      DriverStatus s = ComputeDriverStatus(d, *pc.exec);
      done += s.rows_done;
      total += s.rows_total;
    }
  }
  if (total <= 0) return 0;
  return Clamp01(done / total);
}

double PmaxEstimator::Estimate(const ProgressContext& pc) const {
  QPROG_CHECK(pc.bounds != nullptr && pc.exec != nullptr);
  double curr = static_cast<double>(pc.exec->work());
  double lb = pc.bounds->work_lb;
  if (lb <= 0) return 0;
  return Clamp01(curr / lb);
}

double SafeEstimator::Estimate(const ProgressContext& pc) const {
  QPROG_CHECK(pc.bounds != nullptr && pc.exec != nullptr);
  double curr = static_cast<double>(pc.exec->work());
  double lb = pc.bounds->work_lb;
  double ub = pc.bounds->work_ub;
  if (lb <= 0 || ub <= 0) return 0;
  return Clamp01(curr / std::sqrt(lb * ub));
}

double BoundedDneEstimator::Estimate(const ProgressContext& pc) const {
  QPROG_CHECK(pc.bounds != nullptr && pc.exec != nullptr);
  double dne = DneEstimator().Estimate(pc);
  double curr = static_cast<double>(pc.exec->work());
  double lb = pc.bounds->work_lb;
  double ub = pc.bounds->work_ub;
  // The true progress lies in [Curr/UB, Curr/LB]; clamp dne into it.
  double lo = ub > 0 ? curr / ub : 0.0;
  double hi = lb > 0 ? curr / lb : 1.0;
  return Clamp01(std::clamp(dne, lo, hi));
}

double PessimisticDneEstimator::Estimate(const ProgressContext& pc) const {
  QPROG_CHECK(pc.pipelines != nullptr && pc.exec != nullptr &&
              pc.bounds != nullptr);
  double done = 0;
  double total = 0;
  for (const Pipeline& p : *pc.pipelines) {
    for (const PhysicalOperator* d : p.drivers) {
      DriverStatus s = ComputeDriverStatus(d, *pc.exec);
      done += s.rows_done;
      total += s.rows_total;
    }
  }
  // Fold the engine's outstanding spill debt into the denominator: every
  // pending unit is work the drivers' totals know nothing about, so the raw
  // fraction can only shrink relative to dne — and the shared clamp below is
  // monotone, so the clamped estimate never exceeds dne_bounded either.
  double pending =
      pc.spill != nullptr ? static_cast<double>(pc.spill->spill_rows_pending)
                          : 0.0;
  double denom = total + pending;
  double raw = denom > 0 ? done / denom : 0.0;
  double curr = static_cast<double>(pc.exec->work());
  double lo = pc.bounds->work_ub > 0 ? curr / pc.bounds->work_ub : 0.0;
  double hi = pc.bounds->work_lb > 0 ? curr / pc.bounds->work_lb : 1.0;
  return Clamp01(std::clamp(raw, lo, hi));
}

double HybridEstimator::Estimate(const ProgressContext& pc) const {
  QPROG_CHECK(pc.bounds != nullptr);
  if (pc.scanned_leaf_cardinality > 0) {
    double mu_ub = pc.bounds->work_ub / pc.scanned_leaf_cardinality;
    if (mu_ub <= mu_threshold_) return PmaxEstimator().Estimate(pc);
  }
  return SafeEstimator().Estimate(pc);
}

double WindowEstimator::Estimate(const ProgressContext& pc) const {
  QPROG_CHECK(pc.pipelines != nullptr && pc.exec != nullptr &&
              pc.bounds != nullptr);
  double done = 0;
  double total = 0;
  for (const Pipeline& p : *pc.pipelines) {
    for (const PhysicalOperator* d : p.drivers) {
      DriverStatus s = ComputeDriverStatus(d, *pc.exec);
      done += s.rows_done;
      total += s.rows_total;
    }
  }
  double curr = static_cast<double>(pc.exec->work());
  history_.emplace_back(done, curr);
  if (history_.size() > window_ + 1) {
    history_.erase(history_.begin(),
                   history_.end() - static_cast<long>(window_ + 1));
  }

  // Recent per-driver-tuple work; falls back to the lifetime average, then
  // to 1 (a fresh query).
  double mu_recent;
  double dk = history_.back().first - history_.front().first;
  double dw = history_.back().second - history_.front().second;
  if (history_.size() >= 2 && dk > 0) {
    mu_recent = dw / dk;
  } else if (done > 0) {
    mu_recent = curr / done;
  } else {
    mu_recent = 1.0;
  }
  double remaining = std::max(0.0, total - done);
  double projected_total = curr + remaining * mu_recent;
  double estimate = projected_total > 0 ? curr / projected_total : 0.0;

  // Never leave the feasible interval the bounds guarantee.
  double lo = pc.bounds->work_ub > 0 ? curr / pc.bounds->work_ub : 0.0;
  double hi = pc.bounds->work_lb > 0 ? curr / pc.bounds->work_lb : 1.0;
  return Clamp01(std::clamp(estimate, lo, hi));
}

namespace {

// Parses the whole of `text` as a finite double; false on trailing junk,
// empty input, or non-finite values.
bool ParseFullDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  const char* begin = text.c_str();
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(begin, &end);
  if (end != begin + text.size() || errno == ERANGE || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

// Parses the whole of `text` as an unsigned integer; rejects signs so
// "window:-4" fails instead of wrapping.
bool ParseFullSize(const std::string& text, size_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  const char* begin = text.c_str();
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(begin, &end, 10);
  if (end != begin + text.size() || errno == ERANGE) return false;
  *out = static_cast<size_t>(v);
  return true;
}

}  // namespace

AutoEstimator::AutoEstimator(std::unique_ptr<ProgressEstimator> inner)
    : inner_(std::move(inner)) {
  QPROG_CHECK(inner_ != nullptr);
  pick_ = inner_->name();
}

double AutoEstimator::Estimate(const ProgressContext& pc) const {
  return inner_->Estimate(pc);
}

StatusOr<std::unique_ptr<ProgressEstimator>> CreateEstimator(
    const std::string& spec) {
  // "name" or "name:param" — only hybrid, window and auto take a parameter.
  const size_t colon = spec.find(':');
  const bool has_param = colon != std::string::npos;
  const std::string name = has_param ? spec.substr(0, colon) : spec;
  const std::string param = has_param ? spec.substr(colon + 1) : std::string();

  if (name == "auto") {
    // "auto" = the cold fallback; "auto:<spec>" wraps the resolved pick.
    // Only fixed estimators may be wrapped — nesting auto would hide which
    // concrete estimator a report column came from.
    const std::string inner_spec = has_param ? param : "dne_bounded";
    if (inner_spec == "auto" || inner_spec.rfind("auto:", 0) == 0) {
      return InvalidArgument(StringPrintf(
          "estimator spec '%s': auto cannot wrap auto", spec.c_str()));
    }
    auto inner = CreateEstimator(inner_spec);
    if (!inner.ok()) {
      return InvalidArgument(StringPrintf(
          "estimator spec '%s': bad inner spec: %s", spec.c_str(),
          inner.status().message().c_str()));
    }
    return std::unique_ptr<ProgressEstimator>(
        new AutoEstimator(std::move(inner).value()));
  }
  if (name == "hybrid") {
    double mu_threshold = 3.0;
    if (has_param &&
        (!ParseFullDouble(param, &mu_threshold) || mu_threshold <= 0)) {
      return InvalidArgument(StringPrintf(
          "estimator spec '%s': hybrid takes a positive mu threshold "
          "(e.g. 'hybrid:2.5')",
          spec.c_str()));
    }
    return std::unique_ptr<ProgressEstimator>(
        new HybridEstimator(mu_threshold));
  }
  if (name == "window") {
    size_t window = 16;
    if (has_param && (!ParseFullSize(param, &window) || window == 0)) {
      return InvalidArgument(StringPrintf(
          "estimator spec '%s': window takes a positive integer history "
          "length (e.g. 'window:32')",
          spec.c_str()));
    }
    return std::unique_ptr<ProgressEstimator>(new WindowEstimator(window));
  }
  if (has_param) {
    return InvalidArgument(StringPrintf(
        "estimator spec '%s': '%s' takes no parameter", spec.c_str(),
        name.c_str()));
  }
  if (name == "dne") {
    return std::unique_ptr<ProgressEstimator>(new DneEstimator());
  }
  if (name == "pmax") {
    return std::unique_ptr<ProgressEstimator>(new PmaxEstimator());
  }
  if (name == "safe") {
    return std::unique_ptr<ProgressEstimator>(new SafeEstimator());
  }
  if (name == "dne_bounded") {
    return std::unique_ptr<ProgressEstimator>(new BoundedDneEstimator());
  }
  if (name == "dne_pessimistic") {
    return std::unique_ptr<ProgressEstimator>(new PessimisticDneEstimator());
  }
  // Name the offending token explicitly: with parameterized specs the
  // failing part of "hybird:2.5" is 'hybird', not the whole spec, and the
  // valid-name list turns a typo into a one-glance fix.
  std::string known;
  for (const std::string& n : AllEstimatorNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return InvalidArgument(StringPrintf(
      "estimator spec '%s': unknown estimator name '%s' (known: %s, auto)",
      spec.c_str(), name.c_str(), known.c_str()));
}

std::vector<std::string> AllEstimatorNames() {
  return {"dne",    "pmax",   "safe", "dne_bounded", "dne_pessimistic",
          "hybrid", "window"};
}

std::vector<EstimatorSpecInfo> ListEstimatorSpecs() {
  return {
      {"dne", "dne",
       "Driver-node estimator: work done over dynamically refined total(Q)"},
      {"pmax", "pmax",
       "Pessimistic per-pipeline maximum over driver completion fractions"},
      {"safe", "safe",
       "Conservative lower-bound estimator: Curr over the upper bound UB"},
      {"dne_bounded", "dne_bounded",
       "dne with its total clamped into the refined [LB, UB] interval"},
      {"dne_pessimistic", "dne_pessimistic",
       "dne against the upper bound UB alone (never overestimates progress)"},
      {"hybrid", "hybrid[:mu]",
       "dne_bounded until bounds widen past mu, then safe (default mu 3.0)"},
      {"window", "window[:n]",
       "Rate extrapolation over the last n checkpoints (default n 16)"},
      {"auto", "auto[:spec]",
       "Cross-run pick of the template's historically best fixed estimator "
       "(cold fallback dne_bounded)"},
  };
}

}  // namespace qprog
