#include "core/estimators.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/strings.h"

namespace qprog {

namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

double DneEstimator::Estimate(const ProgressContext& pc) const {
  QPROG_CHECK(pc.pipelines != nullptr && pc.exec != nullptr);
  double done = 0;
  double total = 0;
  for (const Pipeline& p : *pc.pipelines) {
    for (const PhysicalOperator* d : p.drivers) {
      DriverStatus s = ComputeDriverStatus(d, *pc.exec);
      done += s.rows_done;
      total += s.rows_total;
    }
  }
  if (total <= 0) return 0;
  return Clamp01(done / total);
}

double PmaxEstimator::Estimate(const ProgressContext& pc) const {
  QPROG_CHECK(pc.bounds != nullptr && pc.exec != nullptr);
  double curr = static_cast<double>(pc.exec->work());
  double lb = pc.bounds->work_lb;
  if (lb <= 0) return 0;
  return Clamp01(curr / lb);
}

double SafeEstimator::Estimate(const ProgressContext& pc) const {
  QPROG_CHECK(pc.bounds != nullptr && pc.exec != nullptr);
  double curr = static_cast<double>(pc.exec->work());
  double lb = pc.bounds->work_lb;
  double ub = pc.bounds->work_ub;
  if (lb <= 0 || ub <= 0) return 0;
  return Clamp01(curr / std::sqrt(lb * ub));
}

double BoundedDneEstimator::Estimate(const ProgressContext& pc) const {
  QPROG_CHECK(pc.bounds != nullptr && pc.exec != nullptr);
  double dne = DneEstimator().Estimate(pc);
  double curr = static_cast<double>(pc.exec->work());
  double lb = pc.bounds->work_lb;
  double ub = pc.bounds->work_ub;
  // The true progress lies in [Curr/UB, Curr/LB]; clamp dne into it.
  double lo = ub > 0 ? curr / ub : 0.0;
  double hi = lb > 0 ? curr / lb : 1.0;
  return Clamp01(std::clamp(dne, lo, hi));
}

double HybridEstimator::Estimate(const ProgressContext& pc) const {
  QPROG_CHECK(pc.bounds != nullptr);
  if (pc.scanned_leaf_cardinality > 0) {
    double mu_ub = pc.bounds->work_ub / pc.scanned_leaf_cardinality;
    if (mu_ub <= mu_threshold_) return PmaxEstimator().Estimate(pc);
  }
  return SafeEstimator().Estimate(pc);
}

double WindowEstimator::Estimate(const ProgressContext& pc) const {
  QPROG_CHECK(pc.pipelines != nullptr && pc.exec != nullptr &&
              pc.bounds != nullptr);
  double done = 0;
  double total = 0;
  for (const Pipeline& p : *pc.pipelines) {
    for (const PhysicalOperator* d : p.drivers) {
      DriverStatus s = ComputeDriverStatus(d, *pc.exec);
      done += s.rows_done;
      total += s.rows_total;
    }
  }
  double curr = static_cast<double>(pc.exec->work());
  history_.emplace_back(done, curr);
  if (history_.size() > window_ + 1) {
    history_.erase(history_.begin(),
                   history_.end() - static_cast<long>(window_ + 1));
  }

  // Recent per-driver-tuple work; falls back to the lifetime average, then
  // to 1 (a fresh query).
  double mu_recent;
  double dk = history_.back().first - history_.front().first;
  double dw = history_.back().second - history_.front().second;
  if (history_.size() >= 2 && dk > 0) {
    mu_recent = dw / dk;
  } else if (done > 0) {
    mu_recent = curr / done;
  } else {
    mu_recent = 1.0;
  }
  double remaining = std::max(0.0, total - done);
  double projected_total = curr + remaining * mu_recent;
  double estimate = projected_total > 0 ? curr / projected_total : 0.0;

  // Never leave the feasible interval the bounds guarantee.
  double lo = pc.bounds->work_ub > 0 ? curr / pc.bounds->work_ub : 0.0;
  double hi = pc.bounds->work_lb > 0 ? curr / pc.bounds->work_lb : 1.0;
  return Clamp01(std::clamp(estimate, lo, hi));
}

StatusOr<std::unique_ptr<ProgressEstimator>> CreateEstimator(
    const std::string& name) {
  if (name == "dne") {
    return std::unique_ptr<ProgressEstimator>(new DneEstimator());
  }
  if (name == "pmax") {
    return std::unique_ptr<ProgressEstimator>(new PmaxEstimator());
  }
  if (name == "safe") {
    return std::unique_ptr<ProgressEstimator>(new SafeEstimator());
  }
  if (name == "dne_bounded") {
    return std::unique_ptr<ProgressEstimator>(new BoundedDneEstimator());
  }
  if (name == "hybrid") {
    return std::unique_ptr<ProgressEstimator>(new HybridEstimator());
  }
  if (name == "window") {
    return std::unique_ptr<ProgressEstimator>(new WindowEstimator());
  }
  return InvalidArgument(
      StringPrintf("unknown estimator '%s'", name.c_str()));
}

std::vector<std::string> AllEstimatorNames() {
  return {"dne", "pmax", "safe", "dne_bounded", "hybrid", "window"};
}

}  // namespace qprog
