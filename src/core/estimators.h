// The progress-estimator toolkit (Sections 4-6 of the paper).
//
//   dne   — driver-node estimator of [5, 13] (Definition 1): fraction of the
//           driver-node input consumed, summed over all pipelines' drivers.
//           Excellent when per-tuple work variance is low or the input order
//           is predictive; unbounded error otherwise (Example 1).
//   pmax  — Curr / LB (Definition 3): a guaranteed *upper bound* on progress
//           with ratio error <= mu (Theorem 5). Excellent when mu is small.
//   safe  — Curr / sqrt(LB*UB) (Definition 5): worst-case optimal
//           (Theorem 6), ratio error <= sqrt(UB/LB).
//   dne_bounded — dne clamped into the feasible interval [Curr/UB, Curr/LB]
//           (the Section 5.4 refinement that makes dne's error bounded for
//           scan-based plans).
//   hybrid — Section 6.4 heuristic: safe by default, pmax once the
//           *observable upper bound* on mu (UB / sum of scanned-leaf
//           cardinalities) drops below a threshold. (Theorem 7 shows mu
//           itself cannot be estimated; the upper bound can.)
//   dne_pessimistic — dne with the engine's spill debt folded into the
//           denominator: anticipated re-read passes (spilled rows not yet
//           replayed) count as work still owed, so the estimate stops
//           rushing to 1 while partitions sit on disk. Clamped into
//           [Curr/UB, Curr/LB] like dne_bounded; never exceeds dne_bounded
//           while spill work is pending.

#ifndef QPROG_CORE_ESTIMATORS_H_
#define QPROG_CORE_ESTIMATORS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "core/bounds.h"
#include "core/pipeline.h"

namespace qprog {

/// Read-only view of the engine's spill debt at one checkpoint, populated by
/// the ProgressMonitor from the operators' query-thread spill counters
/// (never from SpillRun state a worker task may own). All figures are in
/// work units of the paper's model: one unit per row written to a run, one
/// per row read back.
struct SpillSnapshot {
  uint64_t spill_work_done = 0;     // spill I/O units already performed
  uint64_t spill_rows_pending = 0;  // spill I/O units still owed
  /// Per-node pending spill work, indexed by node id (empty when nothing
  /// has spilled).
  std::vector<uint64_t> node_pending;

  bool active() const { return spill_work_done != 0 || spill_rows_pending != 0; }
};

/// Everything an estimator may look at, at one checkpoint. Matches the
/// paper's information model (Section 2.4): the plan, execution feedback
/// (counters, operator phase state, runtime bounds), and planner estimates —
/// but never the data that has not flowed yet.
struct ProgressContext {
  const PhysicalPlan* plan = nullptr;
  const ExecContext* exec = nullptr;
  const PlanBounds* bounds = nullptr;
  const std::vector<Pipeline>* pipelines = nullptr;
  double scanned_leaf_cardinality = 0;  // denominator of mu
  /// Spill-aware view; null when the monitor has not sampled one (e.g. a
  /// caller-built context). Estimators must treat null as "no spill".
  const SpillSnapshot* spill = nullptr;
};

/// Interface for progress estimators. Estimates are fractions in [0, 1].
class ProgressEstimator {
 public:
  virtual ~ProgressEstimator() = default;
  virtual double Estimate(const ProgressContext& pc) const = 0;
  virtual std::string name() const = 0;
};

class DneEstimator : public ProgressEstimator {
 public:
  double Estimate(const ProgressContext& pc) const override;
  std::string name() const override { return "dne"; }
};

class PmaxEstimator : public ProgressEstimator {
 public:
  double Estimate(const ProgressContext& pc) const override;
  std::string name() const override { return "pmax"; }
};

class SafeEstimator : public ProgressEstimator {
 public:
  double Estimate(const ProgressContext& pc) const override;
  std::string name() const override { return "safe"; }
};

class BoundedDneEstimator : public ProgressEstimator {
 public:
  double Estimate(const ProgressContext& pc) const override;
  std::string name() const override { return "dne_bounded"; }
};

/// dne_bounded made spill-aware: the raw driver fraction's denominator grows
/// by the pending spill work from the ProgressContext's SpillSnapshot, so
/// the estimate anticipates the re-read passes the engine already owes
/// instead of discovering them one checkpoint at a time. Same feasible-
/// interval clamp as dne_bounded; with no snapshot (or no spill) the two
/// are identical, and while spill is pending this one is never larger.
class PessimisticDneEstimator : public ProgressEstimator {
 public:
  double Estimate(const ProgressContext& pc) const override;
  std::string name() const override { return "dne_pessimistic"; }
};

class HybridEstimator : public ProgressEstimator {
 public:
  /// Switches from safe to pmax when UB / scanned-leaf-cardinality (an upper
  /// bound on mu) falls at or below `mu_threshold`.
  explicit HybridEstimator(double mu_threshold = 3.0)
      : mu_threshold_(mu_threshold) {}
  double Estimate(const ProgressContext& pc) const override;
  std::string name() const override { return "hybrid"; }

 private:
  double mu_threshold_;
};

/// The Section 6.4 "sliding window" direction, implemented: like dne, but
/// instead of assuming the driver fraction IS the progress (i.e. that the
/// per-tuple work seen so far equals the overall average), it extrapolates
/// the remaining work from the per-driver-tuple work observed over the most
/// recent `window` checkpoints:
///
///   estimate = Curr / (Curr + remaining_driver_tuples * mu_recent),
///
/// clamped into the feasible [Curr/UB, Curr/LB] interval. Stateful across
/// the checkpoints of one run (do not share an instance between runs).
class WindowEstimator : public ProgressEstimator {
 public:
  explicit WindowEstimator(size_t window = 16) : window_(window) {}
  double Estimate(const ProgressContext& pc) const override;
  std::string name() const override { return "window"; }

 private:
  size_t window_;
  // (driver rows consumed, Curr) at recent checkpoints; mutable because the
  // ProgressEstimator interface is const per call but this estimator
  // accumulates execution feedback, as Section 6.4 envisions.
  mutable std::vector<std::pair<double, double>> history_;
};

/// The König-style robust choice (PAPERS.md: "A Statistical Approach Towards
/// Robust Progress Estimation"): a named wrapper around whichever fixed
/// estimator the cross-run registry picked for the query's template. The
/// wrapper reports name() "auto" — the report column stays stable across
/// queries whose pick differs — while pick() exposes the inner estimator for
/// fleet display. With no history (cold template, or no registry attached)
/// the deterministic fallback is dne_bounded: bounded error on scan-based
/// plans, never the unbounded dne tail.
class AutoEstimator : public ProgressEstimator {
 public:
  /// Wraps `inner` (must be non-null); `inner->name()` becomes pick().
  explicit AutoEstimator(std::unique_ptr<ProgressEstimator> inner);
  double Estimate(const ProgressContext& pc) const override;
  std::string name() const override { return "auto"; }
  /// The wrapped estimator's name ("dne_bounded" when cold).
  const std::string& pick() const { return pick_; }

 private:
  std::unique_ptr<ProgressEstimator> inner_;
  std::string pick_;
};

/// Factory. `spec` is an estimator name — "dne", "pmax", "safe",
/// "dne_bounded", "dne_pessimistic", "hybrid", "window", "auto" — optionally
/// followed by ":" and a constructor parameter for the estimators that take
/// one: "hybrid:2.5" sets the mu threshold (a positive double), "window:32"
/// the history length (a positive integer), "auto:pmax" the inner estimator
/// an AutoEstimator wraps (any non-auto spec; bare "auto" wraps the
/// dne_bounded cold fallback). A bare name uses the default parameter.
/// Returns kInvalidArgument for unknown names, malformed or out-of-range
/// parameters, and parameters passed to estimators that take none ("dne:2").
StatusOr<std::unique_ptr<ProgressEstimator>> CreateEstimator(
    const std::string& spec);

/// All estimator names, in canonical order (bare names, no parameters).
std::vector<std::string> AllEstimatorNames();

/// One row of the estimator catalog: the bare name, the spec syntax
/// CreateEstimator accepts for it, and a one-line description.
struct EstimatorSpecInfo {
  std::string name;
  std::string syntax;
  std::string description;
};

/// The full estimator catalog (AllEstimatorNames plus "auto"), in canonical
/// order. Surfaced by the server's fleet report so operators can discover
/// valid `estimators` values without reading CreateEstimator's source.
std::vector<EstimatorSpecInfo> ListEstimatorSpecs();

}  // namespace qprog

#endif  // QPROG_CORE_ESTIMATORS_H_
