// Diagnostics: bounds-annotated plan explain and remaining-time projection.

#ifndef QPROG_CORE_EXPLAIN_H_
#define QPROG_CORE_EXPLAIN_H_

#include <string>

#include "core/bounds.h"
#include "core/monitor.h"

namespace qprog {

/// Renders the plan tree with, per node, the rows produced so far and the
/// tracker's current [LB, UB] production bounds — the "why is the estimator
/// saying that" view of a running query.
std::string ExplainWithBounds(const PhysicalPlan& plan, const ExecContext& ctx);

/// Projects wall-clock time remaining from a progress estimate: with
/// `elapsed_seconds` spent reaching fraction `estimate` of the work,
/// remaining = elapsed * (1 - p) / p. Returns +inf for p <= 0 and 0 for
/// p >= 1 — the UI-facing quantity a progress bar derives (Section 1's
/// motivation: deciding whether to kill a long-running query).
double EstimateRemainingSeconds(double estimate, double elapsed_seconds);

/// One-line outcome summary of a monitored run, e.g.
///   "completed: work=110001 root_rows=10 checkpoints=11 mu=1.10"
///   "cancelled: work=300 root_rows=0 checkpoints=3 (Cancelled: ...)"
/// — the line a server log or CLI prints per query, aborted or not.
std::string SummarizeReport(const ProgressReport& report);

}  // namespace qprog

#endif  // QPROG_CORE_EXPLAIN_H_
