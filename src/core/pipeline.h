// Pipeline decomposition and driver nodes (Section 4 of the paper).
//
// An execution tree decomposes into pipelines separated by blocking
// operators. Each pipeline is "driven" by its input (driver) node(s): leaf
// scans, or the output side of a blocking operator (a Sort or a
// HashAggregate materializes its input, then acts as the source feeding the
// next pipeline). The dne estimator of [5, 13] reports
//
//     dne = sum_d k_d / sum_d N_d
//
// over all driver nodes d, where k_d is rows retrieved from d so far and N_d
// its (estimated, runtime-refined) total.

#ifndef QPROG_CORE_PIPELINE_H_
#define QPROG_CORE_PIPELINE_H_

#include <string>
#include <vector>

#include "exec/plan.h"

namespace qprog {

struct Pipeline {
  /// Driver (input) nodes of this pipeline. Usually one; merge joins give a
  /// pipeline two driver leaves (the multi-input case the paper's footnote 1
  /// notes; summing k and N over both is the natural extension).
  std::vector<const PhysicalOperator*> drivers;

  /// All operators executing as part of this pipeline.
  std::vector<const PhysicalOperator*> members;
};

/// Splits the plan into pipelines. Blocking boundaries: Sort,
/// HashAggregate, and the build side of a HashJoin. NL/INL inner inputs are
/// driven by the outer and stay inside the outer's pipeline.
std::vector<Pipeline> DecomposePipelines(const PhysicalPlan& plan);

/// Driver-node accounting for dne.
struct DriverStatus {
  const PhysicalOperator* node = nullptr;
  double rows_done = 0;   // k_d
  double rows_total = 0;  // N_d (estimate, refined at runtime)
  bool total_exact = false;
};

/// Computes k_d and N_d for one driver at the current instant.
/// N_d resolution order: exact when known (unfiltered scan: table size;
/// finished node: actual count; materialized sort/aggregate: build size),
/// otherwise the planner's cardinality estimate, otherwise the base-table
/// size, otherwise rows seen so far.
DriverStatus ComputeDriverStatus(const PhysicalOperator* driver,
                                 const ExecContext& ctx);

/// Debug rendering of a decomposition.
std::string PipelinesToString(const std::vector<Pipeline>& pipelines);

}  // namespace qprog

#endif  // QPROG_CORE_PIPELINE_H_
