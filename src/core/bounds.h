// Runtime cardinality bounds (Section 5.1 of the paper).
//
// For every operator the tracker maintains guaranteed lower and upper bounds
// on the operator's *total* production over the whole execution, refined from
// execution feedback (rows produced so far, phase completion, hash-table
// contents) and catalog facts (base-table cardinalities). Summing the
// per-node bounds over all non-root nodes yields bounds [LB, UB] on total(Q),
// the quantities the pmax and safe estimators divide by:
//
//   pmax = Curr / LB          (Definition 3)
//   safe = Curr / sqrt(LB*UB) (Definition 5)
//
// Key invariants (property-tested):
//   * LB >= Curr at every instant;
//   * the final total(Q) always lies in [LB, UB] at every instant;
//   * at completion LB == UB == total(Q).

#ifndef QPROG_CORE_BOUNDS_H_
#define QPROG_CORE_BOUNDS_H_

#include <vector>

#include "exec/plan.h"

namespace qprog {

/// Bounds on one node's total production.
struct CardBounds {
  double lb = 0.0;
  double ub = 0.0;
};

/// Bounds for a whole plan at one instant.
struct PlanBounds {
  std::vector<CardBounds> node_bounds;  // indexed by node id
  double work_lb = 0.0;                 // sum over non-root nodes
  double work_ub = 0.0;
};

/// Computes per-node and work bounds from the current execution state.
/// Stateless between calls; cheap enough to run at every checkpoint.
class BoundsTracker {
 public:
  explicit BoundsTracker(const PhysicalPlan* plan);

  PlanBounds Compute(const ExecContext& ctx) const;

 private:
  const PhysicalPlan* plan_;
};

/// Upper bound on the production of a single execution (one pass) of the
/// subtree rooted at `op`, from static catalog facts only. Used to bound
/// rescanned inner subtrees of nested-loops joins.
double StaticPerPassUpperBound(const PhysicalOperator* op);

/// Sum of cardinalities of the leaves scanned exactly once (SeqScans and
/// static range seeks outside any rescanned NL-inner subtree) — the
/// denominator of the paper's mu (Section 5.2).
double ScannedLeafCardinality(const PhysicalPlan& plan);

}  // namespace qprog

#endif  // QPROG_CORE_BOUNDS_H_
