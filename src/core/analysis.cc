#include "core/analysis.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "exec/scan.h"

namespace qprog {

double PerTupleWork::Mean() const {
  if (work.empty()) return 0;
  double sum = 0;
  for (uint64_t w : work) sum += static_cast<double>(w);
  return sum / static_cast<double>(work.size());
}

double PerTupleWork::Variance() const {
  if (work.empty()) return 0;
  double mean = Mean();
  double sum = 0;
  for (uint64_t w : work) {
    double d = static_cast<double>(w) - mean;
    sum += d * d;
  }
  return sum / static_cast<double>(work.size());
}

PerTupleWork CollectPerTupleWork(PhysicalPlan* plan, int driver_node_id) {
  QPROG_CHECK(driver_node_id >= 0 &&
              static_cast<size_t>(driver_node_id) < plan->num_nodes());
  const PhysicalOperator* driver =
      plan->nodes()[static_cast<size_t>(driver_node_id)];

  PerTupleWork result;
  ExecContext ctx;
  uint64_t last_driver_count = 0;
  uint64_t last_work = 0;

  // For scans the per-tuple accounting of Section 4 is per row *examined*
  // (rows rejected by a merged predicate are zero-work tuples); for other
  // drivers it is per row produced.
  auto driver_count = [&]() -> uint64_t {
    ProgressState s;
    driver->FillProgressState(ctx, &s);
    return driver->kind() == OpKind::kSeqScan ? s.input_examined
                                              : s.rows_produced;
  };

  // Observe every unit of work. When the driver advances at work unit w,
  // units (last_work, w-1] were downstream work of the previous tuple; unit
  // w itself is the new tuple's own getnext.
  ctx.SetWorkObserver(1, [&](uint64_t work) {
    uint64_t count = driver_count();
    if (count > last_driver_count) {
      if (!result.work.empty()) {
        result.work.back() += (work - 1) - last_work;
      }
      // Any rows the scan examined and rejected in between cost no getnext.
      for (uint64_t i = last_driver_count + 1; i < count; ++i) {
        result.work.push_back(0);
      }
      result.work.push_back(1);  // the new tuple's own getnext
      last_driver_count = count;
      last_work = work;
    }
  });
  exec::Drive(plan, {.ctx = &ctx});
  ctx.ClearWorkObserver();

  // Trailing work after the last driver arrival belongs to the last tuple;
  // trailing examined-and-rejected scan rows are zero-work tuples.
  uint64_t final_work = ctx.work();
  if (!result.work.empty() && final_work > last_work) {
    result.work.back() += final_work - last_work;
  }
  uint64_t final_count = driver_count();
  while (last_driver_count < final_count) {
    ++last_driver_count;
    result.work.push_back(0);
  }
  result.total_work = final_work;
  return result;
}

bool IsCPredictive(const std::vector<uint64_t>& work, double c) {
  QPROG_CHECK(c >= 1.0);
  if (work.empty()) return true;
  const size_t n = work.size();
  double total = 0;
  for (uint64_t w : work) total += static_cast<double>(w);
  double mu = total / static_cast<double>(n);
  if (mu == 0) return true;
  size_t half = (n + 1) / 2;
  double prefix = 0;
  for (size_t k = 0; k < n; ++k) {
    prefix += static_cast<double>(work[k]);
    if (k + 1 < half) continue;
    double avg = prefix / static_cast<double>(k + 1);
    if (avg > c * mu + 1e-12 || avg < mu / c - 1e-12) return false;
  }
  return true;
}

double FractionCPredictive(const std::vector<uint64_t>& work, double c,
                           size_t trials, Rng* rng) {
  QPROG_CHECK(trials > 0);
  std::vector<uint64_t> shuffled = work;
  size_t hits = 0;
  for (size_t t = 0; t < trials; ++t) {
    rng->Shuffle(&shuffled);
    if (IsCPredictive(shuffled, c)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace qprog
