#include "core/monitor.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/spill.h"
#include "obs/eta_model.h"

namespace qprog {

const char* TerminationReasonToString(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kCompleted:
      return "completed";
    case TerminationReason::kCancelled:
      return "cancelled";
    case TerminationReason::kDeadlineExceeded:
      return "deadline";
    case TerminationReason::kBudgetExhausted:
      return "budget";
    case TerminationReason::kFault:
      return "fault";
  }
  return "?";
}

TerminationReason TerminationFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return TerminationReason::kCompleted;
    case StatusCode::kCancelled:
      return TerminationReason::kCancelled;
    case StatusCode::kDeadlineExceeded:
      return TerminationReason::kDeadlineExceeded;
    case StatusCode::kResourceExhausted:
      return TerminationReason::kBudgetExhausted;
    default:
      return TerminationReason::kFault;
  }
}

namespace {

/// Clamps an estimator's output into the only legal range: a finite fraction
/// in [0, 1]. NaN maps to 0 (no defensible progress claim).
double SanitizeEstimate(double estimate) {
  if (std::isnan(estimate)) return 0.0;
  if (estimate < 0.0) return 0.0;
  if (estimate > 1.0) return 1.0;  // also catches +inf
  return estimate;
}

}  // namespace

EstimatorMetrics ProgressReport::Metrics(size_t i) const {
  EstimatorMetrics m;
  if (checkpoints.empty()) return m;
  double abs_sum = 0;
  double ratio_sum = 0;
  size_t ratio_n = 0;
  for (const Checkpoint& c : checkpoints) {
    double est = c.estimates[i];
    double err = std::fabs(est - c.true_progress);
    m.max_abs_err = std::max(m.max_abs_err, err);
    abs_sum += err;
    if (c.true_progress > 0 && est > 0) {
      double ratio = std::max(est / c.true_progress, c.true_progress / est);
      m.max_ratio_err = std::max(m.max_ratio_err, ratio);
      ratio_sum += ratio;
      ++ratio_n;
    }
  }
  m.avg_abs_err = abs_sum / static_cast<double>(checkpoints.size());
  m.avg_ratio_err = ratio_n > 0 ? ratio_sum / static_cast<double>(ratio_n) : 1;
  return m;
}

int ProgressReport::FindEstimator(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::string ProgressReport::ToTsv() const {
  std::string out = "work\ttrue";
  for (const std::string& n : names) out += "\t" + n;
  out += "\n";
  for (const Checkpoint& c : checkpoints) {
    out += StringPrintf("%llu\t%.6f", static_cast<unsigned long long>(c.work),
                        c.true_progress);
    for (double e : c.estimates) out += StringPrintf("\t%.6f", e);
    out += "\n";
  }
  return out;
}

ProgressMonitor::ProgressMonitor(
    PhysicalPlan* plan,
    std::vector<std::unique_ptr<ProgressEstimator>> estimators,
    MonitorOptions options)
    : plan_(plan),
      estimators_(std::move(estimators)),
      options_(std::move(options)) {
  QPROG_CHECK(plan_ != nullptr);
  QPROG_CHECK(!estimators_.empty());
}

ProgressMonitor ProgressMonitor::WithEstimators(
    PhysicalPlan* plan, const std::vector<std::string>& names,
    MonitorOptions options) {
  std::vector<std::unique_ptr<ProgressEstimator>> estimators;
  estimators.reserve(names.size());
  for (const std::string& name : names) {
    auto e = CreateEstimator(name);
    QPROG_CHECK_MSG(e.ok(), "%s", e.status().ToString().c_str());
    estimators.push_back(std::move(e).value());
  }
  return ProgressMonitor(plan, std::move(estimators), std::move(options));
}

ProgressReport ProgressMonitor::Run(uint64_t checkpoint_interval) {
  QPROG_CHECK(checkpoint_interval > 0);
  TelemetryCollector* telemetry = options_.telemetry;
  MetricsRegistry* registry = options_.metrics_registry;
  ProgressReport report;
  for (const auto& e : estimators_) report.names.push_back(e->name());
  report.scanned_leaf_cardinality = ScannedLeafCardinality(*plan_);

  ExecContext ctx;
  ctx.set_guard(options_.guard);
  ctx.set_fault_injector(options_.fault_injector);
  ctx.set_spill_manager(options_.spill_manager);
  ctx.set_worker_pool(options_.worker_pool);
  ctx.set_telemetry(telemetry);
  if (options_.fault_injector != nullptr) {
    options_.fault_injector->Reset();  // deterministic replay
  }
  BoundsTracker tracker(plan_);
  std::vector<Pipeline> pipelines = DecomposePipelines(*plan_);

  if (options_.eta_model != nullptr) {
    options_.eta_model->OnRunStart(plan_->nodes().size());
    if (options_.spill_manager != nullptr) {
      const SpillDeviceModel& dm = options_.spill_manager->device_model();
      if (dm.enabled()) {
        options_.eta_model->SeedSpillDeviceRates(
            static_cast<double>(dm.write_ns_per_byte),
            static_cast<double>(dm.read_ns_per_byte));
      }
    }
  }

  if (telemetry != nullptr) {
    TraceEvent begin;
    begin.kind = TraceEventKind::kRunBegin;
    begin.name = JoinStrings(report.names, ",");
    begin.a = report.scanned_leaf_cardinality;
    begin.b = static_cast<double>(checkpoint_interval);
    telemetry->Emit(std::move(begin));
  }

  ProgressContext pc;
  pc.plan = plan_;
  pc.exec = &ctx;
  pc.pipelines = &pipelines;
  pc.scanned_leaf_cardinality = report.scanned_leaf_cardinality;

  SpillSnapshot spill_snapshot;
  ctx.SetWorkObserver(checkpoint_interval, [&](uint64_t work) {
    uint64_t cp_start = registry != nullptr ? MonotonicNanos() : 0;
    PlanBounds bounds = tracker.Compute(ctx);
    pc.bounds = &bounds;
    // Spill-aware view for the estimators, from the operators' query-thread
    // counters (checkpoints fire on the query thread, so this never races a
    // worker task). Exposed only while something has actually spilled.
    spill_snapshot = SpillSnapshot();
    for (const PhysicalOperator* op : plan_->nodes()) {
      ProgressState s;
      op->FillProgressState(ctx, &s);
      if (s.spill_work_done == 0 && s.spill_rows_pending == 0) continue;
      spill_snapshot.spill_work_done += s.spill_work_done;
      spill_snapshot.spill_rows_pending += s.spill_rows_pending;
      if (spill_snapshot.node_pending.empty()) {
        spill_snapshot.node_pending.resize(plan_->nodes().size(), 0);
      }
      spill_snapshot.node_pending[static_cast<size_t>(op->node_id())] =
          s.spill_rows_pending;
    }
    pc.spill = spill_snapshot.active() ? &spill_snapshot : nullptr;
    Checkpoint cp;
    cp.work = work;
    cp.work_lb = bounds.work_lb;
    cp.work_ub = bounds.work_ub;
    cp.estimates.reserve(estimators_.size());
    for (const auto& e : estimators_) {
      if (registry != nullptr) {
        uint64_t eval_start = MonotonicNanos();
        cp.estimates.push_back(SanitizeEstimate(e->Estimate(pc)));
        registry->histogram("estimator_eval_ns")
            ->Record(static_cast<double>(MonotonicNanos() - eval_start));
      } else {
        cp.estimates.push_back(SanitizeEstimate(e->Estimate(pc)));
      }
    }
    if (options_.eta_model != nullptr) {
      // Pending spill bytes: the re-read debt in bytes, estimated from the
      // manager-wide observed bytes/row. Only priced into the band when a
      // spill device model is seeded (see EtaModel::OnCheckpoint).
      double pending_bytes = 0;
      if (spill_snapshot.spill_rows_pending > 0 &&
          options_.spill_manager != nullptr) {
        const SpillStats& ss = options_.spill_manager->stats();
        uint64_t rows = ss.rows_written.load(std::memory_order_relaxed);
        uint64_t bytes = ss.bytes_written.load(std::memory_order_relaxed);
        if (rows > 0) {
          pending_bytes =
              static_cast<double>(spill_snapshot.spill_rows_pending) *
              (static_cast<double>(bytes) / static_cast<double>(rows));
        }
      }
      EtaBand band = options_.eta_model->OnCheckpoint(
          work, bounds.work_lb, bounds.work_ub,
          spill_snapshot.spill_rows_pending, pending_bytes, telemetry);
      cp.eta_seconds = band.eta_s;
      cp.eta_lo_seconds = band.eta_lo_s;
      cp.eta_hi_seconds = band.eta_hi_s;
    }
    if (telemetry != nullptr) {
      // Bounds history first (refinement events carry this checkpoint's
      // work), then the checkpoint, then the estimates it was scored with.
      for (size_t n = 0; n < bounds.node_bounds.size(); ++n) {
        telemetry->RecordNodeBounds(static_cast<int>(n),
                                     bounds.node_bounds[n].lb,
                                     bounds.node_bounds[n].ub, work);
      }
      TraceEvent ev;
      ev.kind = TraceEventKind::kCheckpoint;
      ev.work = work;
      ev.a = bounds.work_lb;
      ev.b = bounds.work_ub;
      telemetry->Emit(std::move(ev));
      for (size_t i = 0; i < estimators_.size(); ++i) {
        TraceEvent est;
        est.kind = TraceEventKind::kEstimatorEvaluated;
        est.work = work;
        est.name = estimators_[i]->name();
        est.a = cp.estimates[i];
        telemetry->Emit(std::move(est));
      }
      // ETA band last (schema v4), opt-in per model: wall-clock values only
      // trace byte-reproducibly under a deterministic clock, so the engine's
      // byte-identical-trace contracts stay intact for ETA-less traces.
      if (options_.eta_model != nullptr &&
          options_.eta_model->trace_enabled()) {
        TraceEvent eta;
        eta.kind = TraceEventKind::kEtaSample;
        eta.work = work;
        eta.a = cp.eta_seconds;
        eta.b = cp.eta_lo_seconds;
        eta.c = cp.eta_hi_seconds;
        telemetry->Emit(std::move(eta));
      }
    }
    report.checkpoints.push_back(std::move(cp));
    pc.bounds = nullptr;
    if (registry != nullptr) {
      registry->IncrementCounter("checkpoints");
      registry->histogram("checkpoint_ns")
          ->Record(static_cast<double>(MonotonicNanos() - cp_start));
    }
    if (options_.checkpoint_listener) {
      options_.checkpoint_listener(report.checkpoints.back());
    }
  });

  exec::DriveOptions drive;
  drive.ctx = &ctx;
  drive.batch_size = options_.batch_size;
  report.root_rows = exec::Drive(plan_, drive).root_rows;
  ctx.ClearWorkObserver();

  report.status = ctx.status();
  report.termination = TerminationFromStatus(report.status);
  report.total_work = ctx.work();
  report.spill_work = ctx.total_spill_work();
  report.peak_buffered_rows = ctx.peak_buffered_rows();
  report.plan_signature = PlanSignature(*plan_);
  report.node_stats.reserve(plan_->num_nodes());
  for (const PhysicalOperator* op : plan_->nodes()) {
    NodeRunStat ns;
    ns.node_id = op->node_id();
    ProgressState state;
    op->FillProgressState(ctx, &state);
    ns.actual_rows = state.rows_produced;
    ns.estimated_rows = op->estimated_rows();
    if (telemetry != nullptr) ns.next_ns = telemetry->stats(ns.node_id).next_ns;
    report.node_stats.push_back(ns);
  }
  if (!report.checkpoints.empty()) {
    // Latest ETA band — also on partial (cancelled/deadline/budget) reports,
    // where it is the claim standing at the last sample before the stop.
    const Checkpoint& last = report.checkpoints.back();
    report.eta_seconds = last.eta_seconds;
    report.eta_lo_seconds = last.eta_lo_seconds;
    report.eta_hi_seconds = last.eta_hi_seconds;
  }
  if (registry != nullptr) registry->IncrementCounter("runs");
  if (!report.completed()) {
    // The true total is unknowable for an unfinished query: keep the partial
    // checkpoints (work counters, bounds, estimates) but make no
    // true-progress or mu claims.
    EmitRunEnd(report);
    return report;
  }
  double denom = std::max(1.0, report.scanned_leaf_cardinality);
  report.mu = static_cast<double>(report.total_work) / denom;
  EmitRunEnd(report);
  for (Checkpoint& c : report.checkpoints) {
    c.true_progress = report.total_work > 0
                          ? static_cast<double>(c.work) /
                                static_cast<double>(report.total_work)
                          : 0;
  }
  return report;
}

void ProgressMonitor::EmitRunEnd(const ProgressReport& report) {
  TelemetryCollector* telemetry = options_.telemetry;
  if (telemetry == nullptr) return;
  TraceEvent ev;
  ev.kind = TraceEventKind::kRunEnd;
  ev.work = report.total_work;
  ev.name = TerminationReasonToString(report.termination);
  if (!report.status.ok()) ev.detail = report.status.ToString();
  ev.a = static_cast<double>(report.root_rows);
  ev.b = report.mu;
  telemetry->Emit(std::move(ev));
  if (TraceSink* sink = telemetry->sink(); sink != nullptr) sink->Flush();
}

ProgressReport ProgressMonitor::MakeAbortedReport(const ExecContext& ctx) const {
  ProgressReport report;
  for (const auto& e : estimators_) report.names.push_back(e->name());
  report.status = ctx.status();
  report.termination = TerminationFromStatus(report.status);
  report.total_work = ctx.work();
  report.spill_work = ctx.total_spill_work();
  report.peak_buffered_rows = ctx.peak_buffered_rows();
  return report;
}

ProgressReport ProgressMonitor::RunWithApproxCheckpoints(
    size_t approx_checkpoints) {
  QPROG_CHECK(approx_checkpoints > 0);
  if (!PlanSupportsRewind(*plan_)) {
    ProgressReport report;
    for (const auto& e : estimators_) report.names.push_back(e->name());
    report.status = InvalidArgument(
        "RunWithApproxCheckpoints requires a rewindable plan: its throwaway "
        "learning run re-opens every operator, and this plan contains an "
        "operator with SupportsRewind() == false; use Run(interval) instead");
    report.termination = TerminationReason::kFault;
    return report;
  }
  // Throwaway learning run to measure total(Q). Guardrails stay active (a
  // cancel or deadline must be honored even while learning); the fault
  // injector is reset first so the monitored run replays the same schedule.
  ExecContext ctx;
  ctx.set_guard(options_.guard);
  ctx.set_fault_injector(options_.fault_injector);
  ctx.set_spill_manager(options_.spill_manager);
  ctx.set_worker_pool(options_.worker_pool);
  if (options_.fault_injector != nullptr) options_.fault_injector->Reset();
  exec::DriveOptions drive;
  drive.ctx = &ctx;
  drive.batch_size = options_.batch_size;
  exec::Drive(plan_, drive);
  if (!ctx.ok()) return MakeAbortedReport(ctx);
  uint64_t total = ctx.work();
  uint64_t interval =
      std::max<uint64_t>(1, total / static_cast<uint64_t>(approx_checkpoints));
  return Run(interval);
}

}  // namespace qprog
