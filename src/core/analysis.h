// Analysis utilities around the paper's theory: per-tuple work profiles
// (mu and variance, Sections 4-5) and predictive orders (Theorem 4).

#ifndef QPROG_CORE_ANALYSIS_H_
#define QPROG_CORE_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "exec/plan.h"

namespace qprog {

/// Per-driver-tuple work profile of a single-pipeline query: element i is
/// the number of getnext calls attributable to the i-th tuple retrieved from
/// the driver node (1 for the driver's own getnext plus everything it
/// triggers downstream before the next driver tuple).
struct PerTupleWork {
  std::vector<uint64_t> work;  // one entry per driver tuple
  uint64_t total_work = 0;     // total(Q)

  double Mean() const;
  double Variance() const;
};

/// Executes the plan and attributes work to driver tuples. `driver_node_id`
/// must identify the pipeline's input node (for scans, attribution is per
/// row *examined*, matching Section 4's per-tuple accounting).
PerTupleWork CollectPerTupleWork(PhysicalPlan* plan, int driver_node_id);

/// Section 4's c-predictive property for a given per-tuple work sequence:
/// for every prefix k >= ceil(N/2), the running average work per tuple is
/// within a factor c of the overall average.
bool IsCPredictive(const std::vector<uint64_t>& work, double c);

/// Monte-Carlo estimate of the fraction of random orders of `work` that are
/// c-predictive (Theorem 4 says >= 1/2 for c = 2).
double FractionCPredictive(const std::vector<uint64_t>& work, double c,
                           size_t trials, Rng* rng);

}  // namespace qprog

#endif  // QPROG_CORE_ANALYSIS_H_
