#include "core/explain.h"

#include <cmath>
#include <limits>

#include "common/strings.h"
#include "obs/run_summary.h"

namespace qprog {

namespace {

void Render(const PhysicalOperator* op, const ExecContext& ctx,
            const PlanBounds& bounds, int depth, std::string* out) {
  const CardBounds& b = bounds.node_bounds[static_cast<size_t>(op->node_id())];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(StringPrintf(
      "#%d %s  produced=%llu  bounds=[%.0f, %.0f]%s\n", op->node_id(),
      op->label().c_str(),
      static_cast<unsigned long long>(ctx.rows_produced(op->node_id())), b.lb,
      b.ub, op->is_root() ? "  (root, excluded from work)" : ""));
  for (size_t i = 0; i < op->num_children(); ++i) {
    Render(op->child(i), ctx, bounds, depth + 1, out);
  }
}

}  // namespace

std::string ExplainWithBounds(const PhysicalPlan& plan,
                              const ExecContext& ctx) {
  BoundsTracker tracker(&plan);
  PlanBounds bounds = tracker.Compute(ctx);
  std::string out = StringPrintf(
      "work=%llu  LB=%.0f  UB=%.0f  (pmax=%.4f  safe=%.4f)\n",
      static_cast<unsigned long long>(ctx.work()), bounds.work_lb,
      bounds.work_ub,
      bounds.work_lb > 0
          ? std::min(1.0, static_cast<double>(ctx.work()) / bounds.work_lb)
          : 0.0,
      bounds.work_lb > 0 && bounds.work_ub > 0
          ? std::min(1.0, static_cast<double>(ctx.work()) /
                              std::sqrt(bounds.work_lb * bounds.work_ub))
          : 0.0);
  Render(plan.root(), ctx, bounds, 0, &out);
  return out;
}

double EstimateRemainingSeconds(double estimate, double elapsed_seconds) {
  if (estimate >= 1.0) return 0.0;
  if (estimate <= 0.0) return std::numeric_limits<double>::infinity();
  return elapsed_seconds * (1.0 - estimate) / estimate;
}

std::string SummarizeReport(const ProgressReport& report) {
  // One formatting path for the per-run line: the observability layer's
  // RunTelemetry prints the identical summary (obs/run_summary.h).
  return FormatRunSummary(report);
}

}  // namespace qprog
