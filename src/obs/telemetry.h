// Per-operator runtime statistics and the TelemetryCollector that gathers
// them during execution.
//
// The collector is attached to an ExecContext (borrowed). When it is absent
// the executor's instrumented wrappers reduce to a single null-pointer branch
// per getnext call — the zero-cost contract verified by
// bench/micro_trace_overhead.cpp. When present, every operator's Open/Next/
// Close is timed with a monotonic clock and counted per plan node, and typed
// TraceEvents flow to the collector's TraceSink (if one is attached).
//
// Everything here is header-only on purpose: qprog_exec instruments against
// these types without linking the observability library, which keeps the
// library layering acyclic (exec -> [obs headers]; obs lib -> core -> exec).

#ifndef QPROG_OBS_TELEMETRY_H_
#define QPROG_OBS_TELEMETRY_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace qprog {

/// Nanoseconds on a cheap monotonic clock (never wall-clock; immune to NTP).
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Runtime statistics for one plan node over one execution. Times are
/// inclusive of children (the convention of EXPLAIN ANALYZE everywhere):
/// a join's next_ns contains the getnext time of its inputs.
struct OperatorStats {
  uint64_t next_calls = 0;     // Next() invocations received from the parent
                               // (batched runs: emulated per-row calls, so
                               // the count matches tuple-at-a-time exactly)
  uint64_t rows_returned = 0;  // Next() calls that produced a row
  uint64_t next_batches = 0;   // NextBatch() invocations covering this node
                               // (0 on the tuple-at-a-time path)
  uint64_t opens = 0;          // Open() calls (rescanned inners open often)
  uint64_t closes = 0;
  uint64_t open_ns = 0;        // cumulative wall time inside Open()
  uint64_t next_ns = 0;        // cumulative wall time inside Next(), inclusive
  uint64_t close_ns = 0;
  uint64_t first_row_ns = 0;   // since run start; 0 = no row produced yet
  uint64_t last_row_ns = 0;
  uint64_t guard_trips = 0;    // guard violations attributed to this node
  uint64_t faults = 0;         // injected/operator faults at this node
  uint64_t spills = 0;             // spill runs this node created
  uint64_t spill_rows_written = 0; // rows written to spill runs
  uint64_t spill_rows_read = 0;    // rows re-read from spill runs
  uint64_t spill_bytes = 0;        // bytes written to spill runs
  uint64_t io_retries = 0;         // transient spill I/O failures retried
};

/// Per-node production-bounds history the monitor feeds in at checkpoints —
/// the raw material for the bounds-accuracy telemetry (obs/accuracy.h).
struct NodeBoundsRecord {
  bool seen = false;
  double first_lb = 0.0, first_ub = 0.0;  // bounds at the first checkpoint
  double lb = 0.0, ub = 0.0;              // latest bounds
  uint64_t refinements = 0;               // times the bounds changed
};

/// Gathers per-operator stats and forwards typed trace events to an optional
/// sink. Borrowed by ExecContext; one collector observes one execution at a
/// time (ExecContext::Reset re-arms it via OnExecReset).
class TelemetryCollector {
 public:
  explicit TelemetryCollector(TraceSink* sink = nullptr) : sink_(sink) {}

  TelemetryCollector(const TelemetryCollector&) = delete;
  TelemetryCollector& operator=(const TelemetryCollector&) = delete;

  /// Installs (or removes) the trace sink. Stats collection is independent
  /// of the sink: no sink means stats-only telemetry.
  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

  /// Called by ExecContext::Reset when a run starts: sizes the per-node
  /// arrays and restarts the run clock. The trace sequence number is NOT
  /// reset — one sink may record several runs back to back.
  void OnExecReset(size_t num_nodes) {
    stats_.assign(num_nodes, OperatorStats{});
    bounds_.assign(num_nodes, NodeBoundsRecord{});
    epoch_ns_ = MonotonicNanos();
  }

  size_t num_nodes() const { return stats_.size(); }
  const OperatorStats& stats(int node) const {
    return stats_[static_cast<size_t>(node)];
  }
  const NodeBoundsRecord& node_bounds(int node) const {
    return bounds_[static_cast<size_t>(node)];
  }
  /// Nanoseconds since the current run started.
  uint64_t run_elapsed_ns() const { return MonotonicNanos() - epoch_ns_; }

  // -- operator lifecycle hooks (called by PhysicalOperator wrappers) -------

  void RecordOpen(int node, const std::string& label, uint64_t elapsed_ns,
                  uint64_t work) {
    OperatorStats& s = stats_[static_cast<size_t>(node)];
    ++s.opens;
    s.open_ns += elapsed_ns;
    if (sink_ != nullptr) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kOperatorOpen;
      ev.work = work;
      ev.node = node;
      ev.name = label;
      Emit(std::move(ev));
    }
  }

  void RecordNext(int node, bool produced, uint64_t elapsed_ns,
                  uint64_t end_ns) {
    OperatorStats& s = stats_[static_cast<size_t>(node)];
    ++s.next_calls;
    s.next_ns += elapsed_ns;
    if (produced) {
      ++s.rows_returned;
      uint64_t rel = end_ns - epoch_ns_;
      if (rel == 0) rel = 1;  // keep 0 reserved for "no row yet"
      if (s.first_row_ns == 0) s.first_row_ns = rel;
      s.last_row_ns = rel;
    }
  }

  /// Per-batch analogue of RecordNext: `rows` produced at the node and
  /// `calls` emulated getnext invocations over one NextBatch, with the
  /// batch's inclusive elapsed time. next_calls/rows_returned stay exactly
  /// what a tuple-at-a-time run would record; only the clock is coarsened to
  /// batch granularity (first_row_ns/last_row_ns land on batch boundaries).
  void RecordNextBatch(int node, uint64_t rows, uint64_t calls,
                       uint64_t elapsed_ns, uint64_t end_ns) {
    OperatorStats& s = stats_[static_cast<size_t>(node)];
    ++s.next_batches;
    s.next_calls += calls;
    s.rows_returned += rows;
    s.next_ns += elapsed_ns;
    if (rows > 0) {
      uint64_t rel = end_ns - epoch_ns_;
      if (rel == 0) rel = 1;  // keep 0 reserved for "no row yet"
      if (s.first_row_ns == 0) s.first_row_ns = rel;
      s.last_row_ns = rel;
    }
  }

  void RecordClose(int node, const std::string& label, uint64_t elapsed_ns,
                   uint64_t work) {
    OperatorStats& s = stats_[static_cast<size_t>(node)];
    ++s.closes;
    s.close_ns += elapsed_ns;
    if (sink_ != nullptr) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kOperatorClose;
      ev.work = work;
      ev.node = node;
      ev.name = label;
      Emit(std::move(ev));
    }
  }

  // -- error attribution hooks (called by ExecContext) ----------------------

  void RecordGuardTrip(int node, uint64_t work, const std::string& reason,
                       const std::string& message) {
    if (node >= 0) ++stats_[static_cast<size_t>(node)].guard_trips;
    if (sink_ != nullptr) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kGuardTrip;
      ev.work = work;
      ev.node = node;
      ev.name = reason;
      ev.detail = message;
      Emit(std::move(ev));
    }
  }

  void RecordFault(int node, uint64_t work, const std::string& site,
                   const std::string& message) {
    if (node >= 0) ++stats_[static_cast<size_t>(node)].faults;
    if (sink_ != nullptr) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kFaultFired;
      ev.work = work;
      ev.node = node;
      ev.name = site;
      ev.detail = message;
      Emit(std::move(ev));
    }
  }

  // -- spill hooks (called by the SpillManager) -----------------------------

  /// `depth` is the Grace recursion depth of the run being created: 0 for
  /// first-pass runs (and every non-join spill), >= 1 for runs produced by
  /// re-partitioning an oversized partition (trace schema v3).
  void RecordSpillBegin(int node, uint64_t work, const std::string& phase,
                        int depth = 0) {
    if (node >= 0) ++stats_[static_cast<size_t>(node)].spills;
    if (sink_ != nullptr) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kSpillBegin;
      ev.work = work;
      ev.node = node;
      ev.name = phase;
      ev.a = static_cast<double>(depth);
      Emit(std::move(ev));
    }
  }

  void RecordSpillEnd(int node, uint64_t work, const std::string& phase,
                      uint64_t rows, uint64_t bytes) {
    if (node >= 0) {
      OperatorStats& s = stats_[static_cast<size_t>(node)];
      s.spill_rows_written += rows;
      s.spill_bytes += bytes;
    }
    if (sink_ != nullptr) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kSpillEnd;
      ev.work = work;
      ev.node = node;
      ev.name = phase;
      ev.a = static_cast<double>(rows);
      ev.b = static_cast<double>(bytes);
      Emit(std::move(ev));
    }
  }

  /// Stats-only (no event): re-reads happen once per spilled row and would
  /// drown the trace.
  void RecordSpillRead(int node, uint64_t rows) {
    if (node >= 0) stats_[static_cast<size_t>(node)].spill_rows_read += rows;
  }

  void RecordIoRetry(int node, uint64_t work, const std::string& site,
                     uint64_t attempt) {
    if (node >= 0) ++stats_[static_cast<size_t>(node)].io_retries;
    if (sink_ != nullptr) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kIoRetry;
      ev.work = work;
      ev.node = node;
      ev.name = site;
      ev.a = static_cast<double>(attempt);
      Emit(std::move(ev));
    }
  }

  // -- bounds history (called by the ProgressMonitor at checkpoints) --------

  /// Records node bounds at a checkpoint; emits a kBoundRefined event when
  /// they changed since the last checkpoint.
  void RecordNodeBounds(int node, double lb, double ub, uint64_t work) {
    NodeBoundsRecord& r = bounds_[static_cast<size_t>(node)];
    bool changed = !r.seen || lb != r.lb || ub != r.ub;
    if (!r.seen) {
      r.seen = true;
      r.first_lb = lb;
      r.first_ub = ub;
    } else if (changed) {
      ++r.refinements;
    }
    r.lb = lb;
    r.ub = ub;
    if (changed && sink_ != nullptr) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kBoundRefined;
      ev.work = work;
      ev.node = node;
      ev.a = lb;
      ev.b = ub;
      Emit(std::move(ev));
    }
  }

  /// Emits an arbitrary event (run begin/end, checkpoints, estimator
  /// evaluations). No-op without a sink; seq is stamped here so every sink
  /// sees a strictly increasing sequence.
  void Emit(TraceEvent event) {
    if (sink_ == nullptr) return;
    event.seq = seq_++;
    sink_->Append(event);
  }

  /// Events handed to the sink so far (and the next seq to be stamped).
  uint64_t events_emitted() const { return seq_; }

 private:
  TraceSink* sink_;
  uint64_t seq_ = 0;
  uint64_t epoch_ns_ = 0;
  std::vector<OperatorStats> stats_;
  std::vector<NodeBoundsRecord> bounds_;
};

}  // namespace qprog

#endif  // QPROG_OBS_TELEMETRY_H_
