// The one per-run summary line. Both core/explain's SummarizeReport and the
// RunTelemetry summary (obs/accuracy.h) delegate here, so a server log, a
// CLI and the telemetry JSON all print the identical line for the same run.
//
// Inline on purpose: core/explain.cc calls this without a link dependency on
// the observability library.

#ifndef QPROG_OBS_RUN_SUMMARY_H_
#define QPROG_OBS_RUN_SUMMARY_H_

#include <string>

#include "common/strings.h"
#include "core/monitor.h"

namespace qprog {

/// One-line outcome summary of a monitored run, e.g.
///   "completed: work=110001 root_rows=10 checkpoints=11 mu=1.10"
///   "cancelled: work=300 root_rows=0 checkpoints=3 (Cancelled: ...)"
inline std::string FormatRunSummary(const ProgressReport& report) {
  std::string out = StringPrintf(
      "%s: work=%llu root_rows=%llu checkpoints=%zu",
      TerminationReasonToString(report.termination),
      static_cast<unsigned long long>(report.total_work),
      static_cast<unsigned long long>(report.root_rows),
      report.checkpoints.size());
  if (report.completed()) {
    out += StringPrintf(" mu=%.2f", report.mu);
  } else {
    out += StringPrintf(" (%s)", report.status.ToString().c_str());
  }
  return out;
}

}  // namespace qprog

#endif  // QPROG_OBS_RUN_SUMMARY_H_
