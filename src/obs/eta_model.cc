#include "obs/eta_model.h"

#include "common/strings.h"

namespace qprog {

void EtaCalibration::Add(const EtaCalibrationSample& sample) {
  if (!sample.band.finite()) {
    ++infinite_bands_;
    return;
  }
  double p = sample.progress;
  if (p < 0.0) p = 0.0;
  size_t d = static_cast<size_t>(p * 10.0);
  if (d > 9) d = 9;
  DecileStats& s = deciles_[d];
  ++s.samples;
  if (sample.actual_remaining_s >= sample.band.eta_lo_s &&
      sample.actual_remaining_s <= sample.band.eta_hi_s) {
    ++s.covered;
  }
  s.abs_err_sum_s += std::fabs(sample.band.eta_s - sample.actual_remaining_s);
  s.rel_width_sum += (sample.band.eta_hi_s - sample.band.eta_lo_s) /
                     std::max(sample.actual_remaining_s, 1e-3);
}

EtaCalibration::DecileStats EtaCalibration::Overall() const {
  DecileStats total;
  for (const DecileStats& s : deciles_) {
    total.samples += s.samples;
    total.covered += s.covered;
    total.abs_err_sum_s += s.abs_err_sum_s;
    total.rel_width_sum += s.rel_width_sum;
  }
  return total;
}

namespace {

std::string DecileJson(const EtaCalibration::DecileStats& s) {
  return StringPrintf(
      "{\"samples\":%llu,\"covered\":%llu,\"coverage\":%.4f,"
      "\"mean_abs_err_s\":%.6f,\"mean_rel_width\":%.4f}",
      static_cast<unsigned long long>(s.samples),
      static_cast<unsigned long long>(s.covered), s.coverage(),
      s.mean_abs_err_s(), s.mean_rel_width());
}

}  // namespace

std::string EtaCalibration::ToJson() const {
  std::string out = "{\"claimed\":0.9,\"overall\":";
  out += DecileJson(Overall());
  out += ",\"deciles\":[";
  for (size_t d = 0; d < 10; ++d) {
    if (d > 0) out += ',';
    out += DecileJson(deciles_[d]);
  }
  out += StringPrintf("],\"infinite_bands\":%llu}",
                      static_cast<unsigned long long>(infinite_bands_));
  return out;
}

}  // namespace qprog
