#include "obs/trace.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common/strings.h"

namespace qprog {

namespace {

/// JSON-escapes a string value: quotes, backslashes and control characters.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// %.17g round-trips every finite double exactly through strtod.
std::string JsonDouble(double v) { return StringPrintf("%.17g", v); }

void AppendField(std::string* out, const char* key, const std::string& value) {
  *out += StringPrintf(",\"%s\":\"%s\"", key, JsonEscape(value).c_str());
}

void AppendField(std::string* out, const char* key, double value) {
  *out += StringPrintf(",\"%s\":%s", key, JsonDouble(value).c_str());
}

void AppendField(std::string* out, const char* key, uint64_t value) {
  *out += StringPrintf(",\"%s\":%llu", key,
                       static_cast<unsigned long long>(value));
}

void AppendField(std::string* out, const char* key, int32_t value) {
  *out += StringPrintf(",\"%s\":%d", key, value);
}

/// Flat JSON object scanner for the trace schema: string and number values
/// only (all any trace line ever contains).
struct FlatJson {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;

  bool has_string(const char* key) const { return strings.count(key) > 0; }
  bool has_number(const char* key) const { return numbers.count(key) > 0; }
  std::string str(const char* key) const {
    auto it = strings.find(key);
    return it == strings.end() ? std::string() : it->second;
  }
  double num(const char* key, double fallback = 0.0) const {
    auto it = numbers.find(key);
    return it == numbers.end() ? fallback : it->second;
  }
};

Status ParseFlatJson(const std::string& line, FlatJson* out) {
  const char* p = line.c_str();
  auto skip_ws = [&] {
    while (*p == ' ' || *p == '\t') ++p;
  };
  auto parse_string = [&](std::string* s) -> bool {
    if (*p != '"') return false;
    ++p;
    s->clear();
    while (*p != '\0' && *p != '"') {
      if (*p == '\\') {
        ++p;
        switch (*p) {
          case '"':
            *s += '"';
            break;
          case '\\':
            *s += '\\';
            break;
          case '/':
            *s += '/';
            break;
          case 'n':
            *s += '\n';
            break;
          case 't':
            *s += '\t';
            break;
          case 'r':
            *s += '\r';
            break;
          case 'u': {
            char hex[5] = {0};
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(p[1 + i]))) {
                return false;
              }
              hex[i] = p[1 + i];
            }
            long code = std::strtol(hex, nullptr, 16);
            if (code > 0x7f) return false;  // traces only escape ASCII control
            *s += static_cast<char>(code);
            p += 4;
            break;
          }
          default:
            return false;
        }
        ++p;
      } else {
        *s += *p++;
      }
    }
    if (*p != '"') return false;
    ++p;
    return true;
  };

  skip_ws();
  if (*p != '{') return InvalidArgument("trace line does not start with '{'");
  ++p;
  skip_ws();
  if (*p == '}') return OkStatus();  // empty object
  for (;;) {
    skip_ws();
    std::string key;
    if (!parse_string(&key)) {
      return InvalidArgument("trace line: malformed key");
    }
    skip_ws();
    if (*p != ':') return InvalidArgument("trace line: expected ':'");
    ++p;
    skip_ws();
    if (*p == '"') {
      std::string value;
      if (!parse_string(&value)) {
        return InvalidArgument("trace line: malformed string value");
      }
      out->strings[key] = std::move(value);
    } else {
      char* end = nullptr;
      double value = std::strtod(p, &end);
      if (end == p) return InvalidArgument("trace line: malformed number");
      out->numbers[key] = value;
      p = end;
    }
    skip_ws();
    if (*p == ',') {
      ++p;
      continue;
    }
    if (*p == '}') return OkStatus();
    return InvalidArgument("trace line: expected ',' or '}'");
  }
}

}  // namespace

const char* TraceEventKindToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kRunBegin:
      return "run_begin";
    case TraceEventKind::kOperatorOpen:
      return "operator_open";
    case TraceEventKind::kOperatorClose:
      return "operator_close";
    case TraceEventKind::kCheckpoint:
      return "checkpoint";
    case TraceEventKind::kEstimatorEvaluated:
      return "estimator";
    case TraceEventKind::kBoundRefined:
      return "bound_refined";
    case TraceEventKind::kGuardTrip:
      return "guard_trip";
    case TraceEventKind::kFaultFired:
      return "fault";
    case TraceEventKind::kRunEnd:
      return "run_end";
    case TraceEventKind::kSpillBegin:
      return "spill_begin";
    case TraceEventKind::kSpillEnd:
      return "spill_end";
    case TraceEventKind::kIoRetry:
      return "io_retry";
    case TraceEventKind::kEtaSample:
      return "eta";
    case TraceEventKind::kExchangeBegin:
      return "exchange_begin";
    case TraceEventKind::kExchangePartition:
      return "partition_close";
  }
  return "?";
}

std::string TraceEventToJson(const TraceEvent& event) {
  std::string out = StringPrintf("{\"v\":%d", kTraceSchemaVersion);
  AppendField(&out, "seq", event.seq);
  out += StringPrintf(",\"event\":\"%s\"", TraceEventKindToString(event.kind));
  AppendField(&out, "work", event.work);
  switch (event.kind) {
    case TraceEventKind::kRunBegin:
      AppendField(&out, "estimators", event.name);
      AppendField(&out, "leaf_cardinality", event.a);
      AppendField(&out, "interval", event.b);
      break;
    case TraceEventKind::kOperatorOpen:
    case TraceEventKind::kOperatorClose:
      AppendField(&out, "node", event.node);
      AppendField(&out, "op", event.name);
      break;
    case TraceEventKind::kCheckpoint:
      AppendField(&out, "work_lb", event.a);
      AppendField(&out, "work_ub", event.b);
      break;
    case TraceEventKind::kEstimatorEvaluated:
      AppendField(&out, "name", event.name);
      AppendField(&out, "estimate", event.a);
      break;
    case TraceEventKind::kBoundRefined:
      AppendField(&out, "node", event.node);
      AppendField(&out, "lb", event.a);
      AppendField(&out, "ub", event.b);
      break;
    case TraceEventKind::kGuardTrip:
      AppendField(&out, "node", event.node);
      AppendField(&out, "reason", event.name);
      AppendField(&out, "message", event.detail);
      break;
    case TraceEventKind::kFaultFired:
      AppendField(&out, "node", event.node);
      AppendField(&out, "site", event.name);
      AppendField(&out, "message", event.detail);
      break;
    case TraceEventKind::kRunEnd:
      AppendField(&out, "termination", event.name);
      AppendField(&out, "message", event.detail);
      AppendField(&out, "root_rows", event.a);
      AppendField(&out, "mu", event.b);
      break;
    case TraceEventKind::kSpillBegin:
      AppendField(&out, "node", event.node);
      AppendField(&out, "phase", event.name);
      AppendField(&out, "depth", event.a);
      break;
    case TraceEventKind::kSpillEnd:
      AppendField(&out, "node", event.node);
      AppendField(&out, "phase", event.name);
      AppendField(&out, "rows", event.a);
      AppendField(&out, "bytes", event.b);
      break;
    case TraceEventKind::kIoRetry:
      AppendField(&out, "node", event.node);
      AppendField(&out, "site", event.name);
      AppendField(&out, "attempt", event.a);
      break;
    case TraceEventKind::kEtaSample:
      AppendField(&out, "eta", event.a);
      AppendField(&out, "eta_lo", event.b);
      AppendField(&out, "eta_hi", event.c);
      break;
    case TraceEventKind::kExchangeBegin:
      AppendField(&out, "node", event.node);
      AppendField(&out, "producers", event.a);
      AppendField(&out, "consumers", event.b);
      break;
    case TraceEventKind::kExchangePartition:
      AppendField(&out, "node", event.node);
      AppendField(&out, "partition", event.a);
      AppendField(&out, "rows", event.b);
      break;
  }
  out += '}';
  return out;
}

StatusOr<TraceEvent> ParseTraceEvent(const std::string& line) {
  FlatJson json;
  Status status = ParseFlatJson(line, &json);
  if (!status.ok()) return status;
  if (!json.has_number("v")) {
    return InvalidArgument("trace line missing schema version \"v\"");
  }
  int version = static_cast<int>(json.num("v"));
  if (!TraceSchemaAccepted(version)) {
    return InvalidArgument(StringPrintf(
        "unsupported trace schema version %d (reader supports %d..%d)",
        version, kMinTraceSchemaVersion, kTraceSchemaVersion));
  }
  if (!json.has_string("event")) {
    return InvalidArgument("trace line missing \"event\"");
  }

  TraceEvent event;
  event.seq = static_cast<uint64_t>(json.num("seq"));
  event.work = static_cast<uint64_t>(json.num("work"));
  event.node = static_cast<int32_t>(json.num("node", -1));

  const std::string kind_name = json.str("event");
  if (kind_name == "run_begin") {
    event.kind = TraceEventKind::kRunBegin;
    event.name = json.str("estimators");
    event.a = json.num("leaf_cardinality");
    event.b = json.num("interval");
  } else if (kind_name == "operator_open" || kind_name == "operator_close") {
    event.kind = kind_name == "operator_open" ? TraceEventKind::kOperatorOpen
                                              : TraceEventKind::kOperatorClose;
    event.name = json.str("op");
  } else if (kind_name == "checkpoint") {
    event.kind = TraceEventKind::kCheckpoint;
    event.a = json.num("work_lb");
    event.b = json.num("work_ub");
  } else if (kind_name == "estimator") {
    event.kind = TraceEventKind::kEstimatorEvaluated;
    event.name = json.str("name");
    event.a = json.num("estimate");
  } else if (kind_name == "bound_refined") {
    event.kind = TraceEventKind::kBoundRefined;
    event.a = json.num("lb");
    event.b = json.num("ub");
  } else if (kind_name == "guard_trip") {
    event.kind = TraceEventKind::kGuardTrip;
    event.name = json.str("reason");
    event.detail = json.str("message");
  } else if (kind_name == "fault") {
    event.kind = TraceEventKind::kFaultFired;
    event.name = json.str("site");
    event.detail = json.str("message");
  } else if (kind_name == "run_end") {
    event.kind = TraceEventKind::kRunEnd;
    event.name = json.str("termination");
    event.detail = json.str("message");
    event.a = json.num("root_rows");
    event.b = json.num("mu");
  } else if (kind_name == "spill_begin") {
    event.kind = TraceEventKind::kSpillBegin;
    event.name = json.str("phase");
    // v2 spill_begin lines carry no depth; they parse as depth 0.
    event.a = json.num("depth");
  } else if (kind_name == "spill_end") {
    event.kind = TraceEventKind::kSpillEnd;
    event.name = json.str("phase");
    event.a = json.num("rows");
    event.b = json.num("bytes");
  } else if (kind_name == "io_retry") {
    event.kind = TraceEventKind::kIoRetry;
    event.name = json.str("site");
    event.a = json.num("attempt");
  } else if (kind_name == "eta") {
    event.kind = TraceEventKind::kEtaSample;
    event.a = json.num("eta");
    event.b = json.num("eta_lo");
    event.c = json.num("eta_hi");
  } else if (kind_name == "exchange_begin") {
    event.kind = TraceEventKind::kExchangeBegin;
    event.a = json.num("producers");
    event.b = json.num("consumers");
  } else if (kind_name == "partition_close") {
    event.kind = TraceEventKind::kExchangePartition;
    event.a = json.num("partition");
    event.b = json.num("rows");
  } else {
    return InvalidArgument(
        StringPrintf("unknown trace event \"%s\"", kind_name.c_str()));
  }
  return event;
}

// --------------------------------------------------------------------------
// RingBufferSink

RingBufferSink::RingBufferSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  buffer_.resize(capacity_);
}

void RingBufferSink::Append(const TraceEvent& event) {
  buffer_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
  ++total_;
}

std::vector<TraceEvent> RingBufferSink::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event sits at head_ once wrapped, else at 0.
  size_t start = size_ < capacity_ ? 0 : head_;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(buffer_[(start + i) % capacity_]);
  }
  return out;
}

// --------------------------------------------------------------------------
// JsonlFileSink

JsonlFileSink::JsonlFileSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    status_ = Internal(
        StringPrintf("cannot open trace file \"%s\" for writing: %s",
                     path.c_str(), std::strerror(errno)));
  }
}

JsonlFileSink::~JsonlFileSink() { Close(); }

void JsonlFileSink::Append(const TraceEvent& event) {
  if (file_ == nullptr || !status_.ok()) return;
  std::string line = TraceEventToJson(event);
  line += '\n';
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    status_ = Internal("trace file write failed");
  }
}

void JsonlFileSink::Flush() {
  if (file_ != nullptr) std::fflush(file_);
}

void JsonlStringSink::Append(const TraceEvent& event) {
  data_ += TraceEventToJson(event);
  data_ += '\n';
}

void JsonlFileSink::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

// --------------------------------------------------------------------------
// Readers

StatusOr<std::vector<TraceEvent>> ParseTraceJsonl(const std::string& text) {
  std::vector<TraceEvent> events;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    StatusOr<TraceEvent> event = ParseTraceEvent(line);
    if (!event.ok()) {
      return InvalidArgument(StringPrintf("trace line %zu: %s", line_no,
                                          event.status().message().c_str()));
    }
    events.push_back(std::move(event).value());
  }
  return events;
}

StatusOr<std::vector<TraceEvent>> ReadTraceFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return NotFound(StringPrintf("cannot open trace file \"%s\": %s",
                                 path.c_str(), std::strerror(errno)));
  }
  std::string text;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Internal(StringPrintf("error reading trace file \"%s\"",
                                 path.c_str()));
  }
  return ParseTraceJsonl(text);
}

}  // namespace qprog
