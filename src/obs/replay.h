// Offline trace replay: reconstructs a ProgressReport from a recorded trace
// so estimators can be re-scored without re-executing the query.
//
// The replay invariant (pinned by tests/obs_test.cc): for a completed run,
// estimator metrics computed from the replayed report are bit-identical to
// the metrics of the live report — TraceEventToJson prints doubles with 17
// significant digits, so every estimate, bound and work counter round-trips
// exactly, and true progress is recomputed with the same work/total division
// the monitor performs.
//
// Beyond re-scoring recorded estimates, the bounds-derived estimators (pmax,
// safe) can be *re-evaluated* from the trace alone — their inputs (Curr, LB,
// UB) are all in the checkpoint events. ReevaluateBoundEstimators does that,
// which is how a new estimator variant can be scored against historical
// traces without touching the engine.

#ifndef QPROG_OBS_REPLAY_H_
#define QPROG_OBS_REPLAY_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/monitor.h"
#include "obs/trace.h"

namespace qprog {

/// A trace replayed into report form.
struct ReplayResult {
  ProgressReport report;      // names, checkpoints, totals, termination
  double leaf_cardinality = 0;  // recorded denominator of mu
  uint64_t checkpoint_interval = 0;
  size_t num_events = 0;
};

/// Replays a recorded event stream. Requires exactly one kRunBegin and (for
/// metric scoring) a kRunEnd; checkpoints and estimator evaluations are
/// matched positionally, the way the monitor emitted them.
StatusOr<ReplayResult> ReplayTrace(const std::vector<TraceEvent>& events);

/// Convenience: read a JSONL trace file and replay it.
StatusOr<ReplayResult> ReplayTraceFile(const std::string& path);

/// Re-evaluates the bounds-derived estimators offline: recomputes
/// pmax = Curr/LB and safe = Curr/sqrt(LB*UB) from each replayed
/// checkpoint's recorded bounds, exactly as the live estimators do
/// (including sanitization into [0, 1]). Returned columns are parallel to
/// `names` = {"pmax", "safe"}.
struct ReevaluatedEstimates {
  std::vector<std::string> names;
  // estimates[c][i]: estimator i at checkpoint c.
  std::vector<std::vector<double>> estimates;
};
ReevaluatedEstimates ReevaluateBoundEstimators(const ReplayResult& replay);

}  // namespace qprog

#endif  // QPROG_OBS_REPLAY_H_
