#include "obs/explain_analyze.h"

#include <cmath>

#include "common/strings.h"
#include "core/explain.h"
#include "exec/exchange.h"
#include "obs/accuracy.h"

namespace qprog {

namespace {

std::string FormatNanos(uint64_t ns) {
  double v = static_cast<double>(ns);
  if (v >= 1e9) return StringPrintf("%.2fs", v / 1e9);
  if (v >= 1e6) return StringPrintf("%.1fms", v / 1e6);
  if (v >= 1e3) return StringPrintf("%.1fus", v / 1e3);
  return StringPrintf("%lluns", static_cast<unsigned long long>(ns));
}

void RenderNode(const PhysicalOperator* op, const ExecContext& ctx,
                const ExplainAnalyzeOptions& opts,
                const CrossRunTemplateStats* xrun, int depth,
                std::string* out) {
  int id = op->node_id();
  ProgressState state;
  op->FillProgressState(ctx, &state);

  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(StringPrintf("#%d %s  rows=%llu", id, op->label().c_str(),
                           static_cast<unsigned long long>(
                               state.rows_produced)));
  if (op->estimated_rows() >= 0) {
    double err = LogScaleError(static_cast<double>(state.rows_produced),
                               op->estimated_rows());
    out->append(StringPrintf(" (est=%.0f logerr=%.2f)", op->estimated_rows(),
                             err));
  }
  if (xrun != nullptr) {
    auto it = xrun->nodes.find(id);
    if (it != xrun->nodes.end() && it->second.runs > 0) {
      out->append(StringPrintf(
          " xrun_err=%.2f runs=%llu", it->second.RmsLogError(),
          static_cast<unsigned long long>(it->second.runs)));
    }
  }
  // Exchange nodes get partition columns: the repartition fan (N->M),
  // rows routed through the exchange, and rows still parked in spill runs
  // awaiting replay (nonzero only mid-drain after a buffer revocation).
  if (op->kind() == OpKind::kExchange) {
    const auto* ex = static_cast<const Exchange*>(op);
    out->append(StringPrintf(
        " partitions=%llu->%llu routed=%llu",
        static_cast<unsigned long long>(ex->num_producers()),
        static_cast<unsigned long long>(ex->num_consumers()),
        static_cast<unsigned long long>(state.build_rows)));
    if (state.spill_rows_pending > 0) {
      out->append(StringPrintf(
          " spill_pending=%llu",
          static_cast<unsigned long long>(state.spill_rows_pending)));
    }
  }
  // Work attribution uses the raw getnext counter: for a merged-predicate
  // scan that counts examined rows, which is what the work model charges.
  if (!op->is_root() && ctx.work() > 0) {
    out->append(StringPrintf(
        " work=%.1f%%",
        100.0 * static_cast<double>(ctx.rows_produced(id)) /
            static_cast<double>(ctx.work())));
  }
  if (opts.telemetry != nullptr) {
    const OperatorStats& s = opts.telemetry->stats(id);
    out->append(StringPrintf(" calls=%llu", static_cast<unsigned long long>(
                                                s.next_calls)));
    if (opts.include_timing) {
      out->append(StringPrintf(
          " time(open=%s next=%s close=%s)", FormatNanos(s.open_ns).c_str(),
          FormatNanos(s.next_ns).c_str(), FormatNanos(s.close_ns).c_str()));
    }
    if (s.guard_trips > 0) {
      out->append(StringPrintf(" guard_trips=%llu",
                               static_cast<unsigned long long>(s.guard_trips)));
    }
    if (s.faults > 0) {
      out->append(StringPrintf(
          " faults=%llu", static_cast<unsigned long long>(s.faults)));
    }
    if (s.spills > 0) {
      out->append(StringPrintf(
          " spills=%llu spilled_rows=%llu reread_rows=%llu",
          static_cast<unsigned long long>(s.spills),
          static_cast<unsigned long long>(s.spill_rows_written),
          static_cast<unsigned long long>(s.spill_rows_read)));
      if (s.io_retries > 0) {
        out->append(StringPrintf(
            " io_retries=%llu",
            static_cast<unsigned long long>(s.io_retries)));
      }
    }
  }
  if (op->is_root()) out->append("  (root, excluded from work)");
  out->push_back('\n');
  for (size_t i = 0; i < op->num_children(); ++i) {
    RenderNode(op->child(i), ctx, opts, xrun, depth + 1, out);
  }
}

}  // namespace

std::string FormatRemainingSeconds(double seconds) {
  if (std::isnan(seconds) || std::isinf(seconds) || seconds < 0) return "--";
  if (seconds >= 1.0) return StringPrintf("%.1fs", seconds);
  return StringPrintf("%.0fms", seconds * 1e3);
}

std::string ExplainAnalyze(const PhysicalPlan& plan, const ExecContext& ctx,
                           const ExplainAnalyzeOptions& opts) {
  std::string out =
      StringPrintf("work=%llu", static_cast<unsigned long long>(ctx.work()));
  if (!plan.nodes().empty()) {
    const PhysicalOperator* root = plan.root();
    out += StringPrintf(
        "  root_rows=%llu",
        static_cast<unsigned long long>(ctx.rows_produced(root->node_id())));
  }
  if (opts.progress_estimate >= 0) {
    out += StringPrintf("  progress=%.1f%%", 100.0 * opts.progress_estimate);
    if (opts.elapsed_seconds >= 0) {
      out += StringPrintf(
          "  remaining=%s",
          FormatRemainingSeconds(
              EstimateRemainingSeconds(opts.progress_estimate,
                                       opts.elapsed_seconds))
              .c_str());
    }
  }
  if (opts.show_eta) {
    out += StringPrintf("  eta=%s band=[%s,%s]",
                        FormatRemainingSeconds(opts.eta_seconds).c_str(),
                        FormatRemainingSeconds(opts.eta_lo_seconds).c_str(),
                        FormatRemainingSeconds(opts.eta_hi_seconds).c_str());
  }
  if (opts.telemetry != nullptr && opts.include_timing) {
    out += StringPrintf(
        "  elapsed=%s",
        FormatNanos(opts.telemetry->run_elapsed_ns()).c_str());
  }
  if (!ctx.ok()) {
    out += StringPrintf("  ERROR: %s", ctx.status().ToString().c_str());
  }
  out += '\n';
  if (!plan.nodes().empty()) {
    // One registry lookup for the whole tree; nodes render from the copy.
    CrossRunTemplateStats xrun;
    bool have_xrun = false;
    if (opts.cross_run != nullptr) {
      xrun = opts.cross_run->Lookup(opts.fingerprint, &have_xrun);
    }
    RenderNode(plan.root(), ctx, opts, have_xrun ? &xrun : nullptr, 0, &out);
  }
  return out;
}

}  // namespace qprog
