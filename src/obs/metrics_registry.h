// MetricsRegistry: named counters and histograms for the engine's own
// machinery — checkpoint latency, estimator evaluation cost, bound
// refinements — dumpable as JSON for the bench harness (BENCH_obs.json).
//
// Header-only so qprog_core can record into a registry without a link
// dependency on the observability library. Not thread-safe by design: one
// registry observes one single-threaded execution, like ExecContext.

#ifndef QPROG_OBS_METRICS_REGISTRY_H_
#define QPROG_OBS_METRICS_REGISTRY_H_

#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "common/strings.h"

namespace qprog {

/// A log2-bucketed histogram of non-negative samples (typically nanoseconds).
/// Bucket i counts samples in [2^i, 2^(i+1)); bucket 0 also holds 0-valued
/// samples. 64 buckets cover the full uint64 range.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Record(double value) {
    if (value < 0 || std::isnan(value)) value = 0;
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (count_ == 1 || value > max_) max_ = value;
    ++buckets_[BucketOf(value)];
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }
  uint64_t bucket(size_t i) const { return buckets_[i]; }

  /// Estimate of the p-th percentile (p in [0, 1]): finds the bucket holding
  /// the target rank and linearly interpolates within it by rank, clamped to
  /// the observed [min, max]. Reporting the bucket's upper bound would
  /// overstate tail latency by up to 2x (a max of 41865 reads as a p99 of
  /// 65536); interpolation keeps the estimate inside the observed range.
  double ApproxPercentile(double p) const {
    if (count_ == 0) return 0;
    uint64_t target = static_cast<uint64_t>(p * static_cast<double>(count_));
    if (target >= count_) target = count_ - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      if (seen + buckets_[i] > target) {
        double lo = i == 0 ? 0.0 : static_cast<double>(1ULL << i);
        double hi = static_cast<double>(1ULL << (i + 1 <= 63 ? i + 1 : 63));
        // Rank position within the bucket, at the midpoint of the sample's
        // unit slot so a single-sample bucket reads as its center.
        double frac = (static_cast<double>(target - seen) + 0.5) /
                      static_cast<double>(buckets_[i]);
        double v = lo + frac * (hi - lo);
        if (v < min_) v = min_;
        if (v > max_) v = max_;
        return v;
      }
      seen += buckets_[i];
    }
    return max_;
  }

 private:
  static size_t BucketOf(double value) {
    if (value < 1.0) return 0;
    double l = std::log2(value);
    size_t b = static_cast<size_t>(l);
    return b >= kNumBuckets ? kNumBuckets - 1 : b;
  }

  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  uint64_t buckets_[kNumBuckets] = {};
};

class MetricsRegistry {
 public:
  /// Adds `n` to the named counter (created at zero on first use).
  void IncrementCounter(const std::string& name, uint64_t n = 1) {
    counters_[name] += n;
  }
  uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Returns the named histogram, creating it on first use.
  LatencyHistogram* histogram(const std::string& name) {
    return &histograms_[name];
  }
  const LatencyHistogram* FindHistogram(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  size_t num_counters() const { return counters_.size(); }
  size_t num_histograms() const { return histograms_.size(); }

  /// JSON dump with deterministic (sorted) key order:
  ///   {"counters":{...},"histograms":{"name":{"count":..,"sum":..,
  ///    "min":..,"max":..,"mean":..,"p50":..,"p99":..},...}}
  std::string ToJson() const {
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : counters_) {
      if (!first) out += ',';
      first = false;
      out += StringPrintf("\"%s\":%llu", name.c_str(),
                          static_cast<unsigned long long>(value));
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
      if (!first) out += ',';
      first = false;
      out += StringPrintf(
          "\"%s\":{\"count\":%llu,\"sum\":%.6g,\"min\":%.6g,\"max\":%.6g,"
          "\"mean\":%.6g,\"p50\":%.6g,\"p99\":%.6g}",
          name.c_str(), static_cast<unsigned long long>(h.count()), h.sum(),
          h.min(), h.max(), h.mean(), h.ApproxPercentile(0.5),
          h.ApproxPercentile(0.99));
    }
    out += "}}";
    return out;
  }

  /// Prometheus text exposition (one scrapeable page): counters as
  /// `<prefix><name> <value>` counter metrics, histograms as summaries with
  /// p50/p99 quantile gauges plus `_sum`/`_count`. Metric names are
  /// sanitized to [a-zA-Z0-9_]; key order is deterministic (sorted), so the
  /// dump is golden-testable.
  std::string DumpPrometheus(const std::string& prefix = "qprog_") const {
    std::string out;
    for (const auto& [name, value] : counters_) {
      std::string metric = prefix + SanitizeMetricName(name);
      out += StringPrintf("# TYPE %s counter\n%s %llu\n", metric.c_str(),
                          metric.c_str(),
                          static_cast<unsigned long long>(value));
    }
    for (const auto& [name, h] : histograms_) {
      std::string metric = prefix + SanitizeMetricName(name);
      out += StringPrintf(
          "# TYPE %s summary\n"
          "%s{quantile=\"0.5\"} %.6g\n"
          "%s{quantile=\"0.99\"} %.6g\n"
          "%s_sum %.6g\n"
          "%s_count %llu\n",
          metric.c_str(), metric.c_str(), h.ApproxPercentile(0.5),
          metric.c_str(), h.ApproxPercentile(0.99), metric.c_str(), h.sum(),
          metric.c_str(), static_cast<unsigned long long>(h.count()));
    }
    return out;
  }

 private:
  static std::string SanitizeMetricName(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_';
      if (!ok) c = '_';
    }
    return out;
  }

  std::map<std::string, uint64_t> counters_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace qprog

#endif  // QPROG_OBS_METRICS_REGISTRY_H_
