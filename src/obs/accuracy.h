// Estimator- and cardinality-accuracy telemetry for one run.
//
// Two kinds of wrongness are tracked, following pg_track_optimizer (see
// SNIPPETS.md) and the per-run feature logs of König et al.'s statistical
// progress estimation (PAPERS.md):
//
//  * Per plan node: how wrong the planner's row estimate — and the bounds
//    tracker's first-checkpoint prediction — turned out to be, as a
//    log-scale error |ln(actual/estimated)| (a 10x under- and a 10x
//    over-estimate score the same). Aggregated pg_track_optimizer-style:
//    avg, RMS, and a time-weighted average that emphasises errors in
//    expensive nodes when wall-time telemetry is available.
//
//  * Per checkpoint: each progress estimator's signed residual
//    (estimate - true_progress), the raw series a learned weighting (à la
//    König) would train on, plus the paper's error metrics per estimator.
//
// Both roll up into RunTelemetry with worst-offender rankings and a JSON
// dump for fleet-level collection.

#ifndef QPROG_OBS_ACCURACY_H_
#define QPROG_OBS_ACCURACY_H_

#include <string>
#include <vector>

#include "core/monitor.h"
#include "exec/plan.h"
#include "obs/telemetry.h"

namespace qprog {

/// pg_track_optimizer's node error: |ln(actual/estimated)|, with both sides
/// clamped to >= 1 row so empty results stay finite. Returns -1 when the
/// estimate is unknown (negative).
double LogScaleError(double actual_rows, double estimated_rows);

/// Cardinality accuracy of one plan node over one run.
struct NodeAccuracy {
  int node_id = -1;
  std::string label;
  uint64_t actual_rows = 0;      // rows the node produced to its parent
  double estimated_rows = -1;    // planner estimate; < 0 when unknown
  double log_error = -1;         // |ln(actual/est)|; < 0 when unknown
  // Bounds-tracker prediction at the first checkpoint (geometric midpoint
  // sqrt(lb*ub) is the tracker's best single-number guess).
  bool has_bounds = false;
  double first_lb = 0, first_ub = 0;
  double bounds_log_error = -1;  // |ln(actual/sqrt(lb*ub))|; < 0 when unknown
  bool within_first_bounds = false;  // final actual inside the first [lb, ub]
  uint64_t bound_refinements = 0;
  uint64_t next_ns = 0;          // inclusive getnext time (0 if no telemetry)
};

/// Accuracy of one progress estimator over one run's checkpoints.
struct EstimatorAccuracy {
  std::string name;
  std::vector<double> residuals;  // estimate - true_progress, per checkpoint
  double avg_abs_residual = 0;
  double max_abs_residual = 0;
  EstimatorMetrics metrics;       // the paper's abs/ratio error summary
};

/// Everything the observability layer knows about one finished (or aborted)
/// run, in one machine-consumable record.
struct RunTelemetry {
  std::string summary;  // FormatRunSummary line — the shared formatting path
  TerminationReason termination = TerminationReason::kCompleted;
  uint64_t total_work = 0;
  uint64_t root_rows = 0;
  double mu = 0;

  std::vector<NodeAccuracy> nodes;           // indexed by node id
  std::vector<EstimatorAccuracy> estimators; // parallel to report names

  // pg_track_optimizer-style aggregates over nodes with known estimates.
  double avg_log_error = 0;   // simple average
  double rms_log_error = 0;   // RMS — emphasises large errors
  double twa_log_error = 0;   // time-weighted — emphasises expensive nodes
                              // (0 when no wall-time telemetry was attached)

  /// Node ids sorted by log_error, worst first (unknown estimates excluded).
  std::vector<int> worst_nodes;
  /// Estimator names sorted by avg_abs_residual, worst first.
  std::vector<std::string> worst_estimators;

  /// Deterministic JSON dump (doubles at %.6g; not a replay format).
  std::string ToJson() const;
};

/// Builds the accuracy record for a run. `ctx` must be the context the plan
/// executed under (its counters feed actual row counts). `collector` is
/// optional; when present, bounds history and per-node wall time enrich the
/// node records and enable the time-weighted error.
RunTelemetry BuildRunTelemetry(const PhysicalPlan& plan, const ExecContext& ctx,
                               const ProgressReport& report,
                               const TelemetryCollector* collector = nullptr);

}  // namespace qprog

#endif  // QPROG_OBS_ACCURACY_H_
