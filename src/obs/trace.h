// Structured trace layer: typed events describing one query execution, a
// pluggable TraceSink to receive them, and a TraceReader that parses a
// recorded JSONL trace back into events for offline replay (obs/replay.h).
//
// Events are deliberately timestamp-free: a trace for a fixed plan and fixed
// fault-injector seed is byte-identical across runs, which is what makes the
// golden-trace tests and the replay-equals-live invariant possible. Wall-time
// lives in OperatorStats (obs/telemetry.h), never in the trace.
//
// Schema versioning: every JSONL line carries `"v":N` with
// N = kTraceSchemaVersion. Bumping a schema is ONE edit — raise
// kTraceSchemaVersion — because every reader consults the single
// TraceSchemaAccepted() range predicate below instead of literal version
// lists. History: v2 added the spill/io-retry events, v3 the Grace recursion
// `depth` field on spill_begin, v4 the per-checkpoint `eta` event
// (obs/eta_model.h), v5 the exchange repartition events (exchange_begin /
// partition_close). Each version is a strict superset of the previous one,
// so the reader parses the full accepted range (see DESIGN.md section 8).

#ifndef QPROG_OBS_TRACE_H_
#define QPROG_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace qprog {

/// Current trace schema version written by the serializer. A schema bump
/// edits this constant and nothing else on the reader side.
inline constexpr int kTraceSchemaVersion = 5;

/// Oldest schema version the reader still parses. Every version since is a
/// strict superset of its predecessor (absent fields parse as zero values),
/// so the reader handles the whole range.
inline constexpr int kMinTraceSchemaVersion = 1;

/// The single accepted-range predicate every reader consults. No code may
/// compare against version literals directly — this is what makes a version
/// bump a one-line change that cannot miss a reader.
inline constexpr bool TraceSchemaAccepted(int version) {
  return version >= kMinTraceSchemaVersion && version <= kTraceSchemaVersion;
}

/// Every event type the engine can emit. One enumerator per row in the
/// DESIGN.md section-8 event taxonomy; serialized under stable string names
/// (TraceEventKindToString) so the JSONL schema survives enum reordering.
enum class TraceEventKind : uint8_t {
  kRunBegin,            // monitored run starts: estimator roster, leaf card
  kOperatorOpen,        // an operator's Open() ran
  kOperatorClose,       // an operator's Close() ran
  kCheckpoint,          // work-based checkpoint sampled: work, [LB, UB]
  kEstimatorEvaluated,  // one estimator's (sanitized) estimate at a checkpoint
  kBoundRefined,        // a node's [lb, ub] production bounds changed
  kGuardTrip,           // QueryGuard violation became the sticky error
  kFaultFired,          // FaultInjector fault became the sticky error
  kRunEnd,              // run finished: total work, termination, root rows, mu
  kSpillBegin,          // v2: a node started spilling (phase in `name`);
                        // v3 adds the Grace recursion depth in `a`
  kSpillEnd,            // v2: one spill run sealed: rows + bytes written
  kIoRetry,             // v2: transient spill I/O failure, attempt retried
  kEtaSample,           // v4: sanitized wall-clock ETA band at a checkpoint
  kExchangeBegin,       // v5: an exchange starts materializing its producers
  kExchangePartition,   // v5: one producer partition folded at the exchange
};

const char* TraceEventKindToString(TraceEventKind kind);

/// One trace event. The generic payload fields mean different things per
/// kind (and serialize under kind-specific JSON keys):
///
///   kind                `name`            `detail`        `a`         `b`
///   ------------------  ----------------  --------------  ----------  -----
///   kRunBegin           estimators (CSV)  -               leaf card   interval
///   kOperatorOpen/Close operator label    -               -           -
///   kCheckpoint         -                 -               work_lb     work_ub
///   kEstimatorEvaluated estimator name    -               estimate    -
///   kBoundRefined       -                 -               lb          ub
///   kGuardTrip          reason            status message  -           -
///   kFaultFired         fault site        status message  -           -
///   kRunEnd             termination       status message  root_rows   mu
///   kSpillBegin         spill phase       -               depth       -
///   kSpillEnd           spill phase       -               rows        bytes
///   kIoRetry            fault site        -               attempt     -
///   kEtaSample          -                 -               eta_s       eta_lo_s   (`c` = eta_hi_s)
///   kExchangeBegin      -                 -               producers   consumers
///   kExchangePartition  -                 -               partition   rows
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kRunBegin;
  uint64_t seq = 0;   // collector-assigned, strictly increasing
  uint64_t work = 0;  // ExecContext work counter at emission
  int32_t node = -1;  // plan node id, -1 when not node-scoped
  std::string name;
  std::string detail;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;  // third payload double (v4: eta_hi); 0 for older kinds

  bool operator==(const TraceEvent& other) const = default;
};

/// Serializes one event as a single JSONL line (no trailing newline).
/// Doubles are printed with 17 significant digits so they round-trip
/// bit-exactly through ParseTraceEvent — the foundation of the replay
/// invariant.
std::string TraceEventToJson(const TraceEvent& event);

/// Parses one JSONL line produced by TraceEventToJson.
StatusOr<TraceEvent> ParseTraceEvent(const std::string& line);

/// Receives events as they are emitted. Implementations must tolerate
/// Append() between any two getnext calls; Flush() is a hint before the
/// trace is handed to a reader.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Append(const TraceEvent& event) = 0;
  virtual void Flush() {}
};

/// Fixed-capacity in-memory sink keeping the most recent `capacity` events —
/// the "flight recorder" attached to a long-running server query.
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(size_t capacity);

  void Append(const TraceEvent& event) override;

  /// Buffered events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  /// Total events ever appended (>= size() once wrapped).
  uint64_t total_appended() const { return total_; }
  /// Events evicted by wraparound.
  uint64_t dropped() const { return total_ - size_; }

 private:
  size_t capacity_;
  size_t size_ = 0;
  size_t head_ = 0;  // next write position
  uint64_t total_ = 0;
  std::vector<TraceEvent> buffer_;
};

/// Accumulates the JSONL text in memory — golden tests and small traces.
class JsonlStringSink : public TraceSink {
 public:
  void Append(const TraceEvent& event) override;  // out of line: this header
                                                  // is included by qprog_exec,
                                                  // which must not pull in
                                                  // serialization symbols
  const std::string& data() const { return data_; }

 private:
  std::string data_;
};

/// Streams events to a JSONL file. Write failures latch into status() and
/// further appends become no-ops (tracing must never crash the query).
class JsonlFileSink : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;

  JsonlFileSink(const JsonlFileSink&) = delete;
  JsonlFileSink& operator=(const JsonlFileSink&) = delete;

  void Append(const TraceEvent& event) override;
  void Flush() override;
  /// Closes the file; later appends are dropped. Idempotent.
  void Close();

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  std::FILE* file_ = nullptr;
  Status status_;
};

/// Parses a whole JSONL trace (one event per non-empty line). Fails with the
/// offending line number on the first malformed or version-incompatible line.
StatusOr<std::vector<TraceEvent>> ParseTraceJsonl(const std::string& text);

/// Reads and parses a JSONL trace file written by JsonlFileSink.
StatusOr<std::vector<TraceEvent>> ReadTraceFile(const std::string& path);

}  // namespace qprog

#endif  // QPROG_OBS_TRACE_H_
