// Wall-clock ETA with calibrated uncertainty bands (DESIGN.md section 13).
//
// The paper's estimators answer "what fraction of the work is done?"; every
// consumer of a progress bar actually wants "done in 3m ± 40s". This layer
// maps work → time using the rates the engine already measures, and carries
// *uncertainty* instead of a bare point estimate, in the spirit of Wu et
// al.'s "Uncertainty Aware Query Execution Time Prediction" (PAPERS.md):
//
//   RateTracker — online EWMA mean + variance of the engine's work→time
//     rates: the aggregate ns per work unit (getnext call) observed between
//     checkpoints, per-operator ns/getnext sampled from a TelemetryCollector,
//     and ns/byte for spill I/O seeded from the SpillDeviceModel.
//
//   EtaModel — at every checkpoint converts the remaining-work interval into
//     an [eta_lo, eta, eta_hi] wall-clock band by combining
//       (a) the structural interval implied by the [LB, UB] work bounds
//           (remaining work is somewhere in [LB-Curr, UB-Curr]), with
//       (b) the observed rate variance (a z * stddev rate band).
//     The point estimate prices the `safe` estimator's implied total
//     (sqrt(LB*UB), the worst-case-optimal choice of Theorem 6) at the mean
//     rate.
//
// Sanitization contract (mirrors the monitor's estimate sanitization): a
// band is either all-finite with 0 <= eta_lo <= eta <= eta_hi, or the
// all-infinite "unknowable" band (rendered "--" everywhere) — before the
// first checkpoint, or when a component would be NaN. A misbehaving rate
// cannot leak NaN or a negative ETA into a report, a trace, or a fleet row.
//
// Header-only on purpose, like telemetry.h / metrics_registry.h: the
// ProgressMonitor (qprog_core) drives the model without linking qprog_obs.
// The offline calibration scorer lives in eta_model.cc (qprog_obs).
//
// Determinism: the clock is injectable (EtaModelOptions::now_fn). With a
// deterministic clock the whole band is a pure function of the checkpoint
// sequence, which is how tests pin byte-identical ETA traces across worker
// pool sizes. Trace emission is opt-in (EtaModelOptions::trace) so the
// engine's existing byte-identical-trace contracts are unaffected by merely
// attaching a model.

#ifndef QPROG_OBS_ETA_MODEL_H_
#define QPROG_OBS_ETA_MODEL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "obs/telemetry.h"

namespace qprog {

/// One EWMA-tracked rate: exponentially weighted mean and variance.
struct RateEstimate {
  double mean = 0.0;      // EWMA mean of the observed samples
  double var = 0.0;       // EWMA variance around that mean
  uint64_t samples = 0;   // observations folded in

  double stddev() const { return std::sqrt(std::max(0.0, var)); }
  bool warm() const { return samples > 0; }

  void Observe(double sample, double alpha) {
    ++samples;
    if (samples == 1) {
      mean = sample;
      var = 0.0;
      return;
    }
    // West's EW update: variance shrinks only as evidence accumulates.
    double delta = sample - mean;
    double incr = alpha * delta;
    mean += incr;
    var = (1.0 - alpha) * (var + delta * incr);
  }
};

/// Online work→time rates for one run. All rates are in nanoseconds per
/// unit; per-node samples are *inclusive* ns per getnext (an operator's
/// Next() time contains its children's, the EXPLAIN ANALYZE convention).
class RateTracker {
 public:
  explicit RateTracker(double alpha = 0.3) : alpha_(alpha) {}

  void Reset(size_t num_nodes) {
    work_ = RateEstimate();
    spill_write_ = RateEstimate();
    spill_read_ = RateEstimate();
    nodes_.assign(num_nodes, RateEstimate());
    last_node_calls_.assign(num_nodes, 0);
    last_node_ns_.assign(num_nodes, 0);
  }

  /// Aggregate rate: `delta_ns` wall nanoseconds bought `delta_work` units
  /// of the paper's work measure since the previous checkpoint.
  void ObserveWork(uint64_t delta_work, uint64_t delta_ns) {
    if (delta_work == 0) return;
    work_.Observe(static_cast<double>(delta_ns) /
                      static_cast<double>(delta_work),
                  alpha_);
  }

  /// Per-operator rates, sampled as deltas from a TelemetryCollector's
  /// cumulative per-node counters at a checkpoint.
  void ObserveNodes(const TelemetryCollector& telemetry) {
    size_t n = std::min(nodes_.size(), telemetry.num_nodes());
    for (size_t i = 0; i < n; ++i) {
      const OperatorStats& s = telemetry.stats(static_cast<int>(i));
      uint64_t dc = s.next_calls - last_node_calls_[i];
      uint64_t dns = s.next_ns - last_node_ns_[i];
      last_node_calls_[i] = s.next_calls;
      last_node_ns_[i] = s.next_ns;
      if (dc == 0) continue;
      nodes_[i].Observe(static_cast<double>(dns) / static_cast<double>(dc),
                        alpha_);
    }
  }

  /// Spill device rates (ns/byte). Seeded exactly from the SpillDeviceModel
  /// when the engine simulates device bandwidth; observed samples may refine
  /// them afterwards.
  void SeedSpillRates(double write_ns_per_byte, double read_ns_per_byte) {
    if (write_ns_per_byte > 0) spill_write_.Observe(write_ns_per_byte, alpha_);
    if (read_ns_per_byte > 0) spill_read_.Observe(read_ns_per_byte, alpha_);
  }
  void ObserveSpillWrite(double ns_per_byte) {
    spill_write_.Observe(ns_per_byte, alpha_);
  }
  void ObserveSpillRead(double ns_per_byte) {
    spill_read_.Observe(ns_per_byte, alpha_);
  }

  double alpha() const { return alpha_; }
  const RateEstimate& work_rate() const { return work_; }
  const RateEstimate& spill_write_rate() const { return spill_write_; }
  const RateEstimate& spill_read_rate() const { return spill_read_; }
  size_t num_nodes() const { return nodes_.size(); }
  const RateEstimate& node_rate(size_t node) const { return nodes_[node]; }

 private:
  double alpha_;
  RateEstimate work_;
  RateEstimate spill_write_;
  RateEstimate spill_read_;
  std::vector<RateEstimate> nodes_;
  std::vector<uint64_t> last_node_calls_;
  std::vector<uint64_t> last_node_ns_;
};

/// One wall-clock prediction: seconds until the query completes, with a
/// calibrated uncertainty band. Either all three components are finite with
/// 0 <= eta_lo <= eta <= eta_hi, or all three are +infinity ("unknowable";
/// renderers show "--").
struct EtaBand {
  double eta_s = std::numeric_limits<double>::infinity();
  double eta_lo_s = std::numeric_limits<double>::infinity();
  double eta_hi_s = std::numeric_limits<double>::infinity();

  bool finite() const {
    return std::isfinite(eta_s) && std::isfinite(eta_lo_s) &&
           std::isfinite(eta_hi_s);
  }
};

/// Clamps a band into the only legal shape: finite components are forced
/// non-negative and ordered eta_lo <= eta <= eta_hi; any NaN (or a
/// non-finite point estimate) collapses the band to all-infinite.
inline EtaBand SanitizeEtaBand(EtaBand band) {
  if (std::isnan(band.eta_s) || std::isnan(band.eta_lo_s) ||
      std::isnan(band.eta_hi_s) || !std::isfinite(band.eta_s)) {
    return EtaBand();
  }
  band.eta_s = std::max(0.0, band.eta_s);
  band.eta_lo_s = std::max(0.0, band.eta_lo_s);
  band.eta_hi_s = std::max(0.0, band.eta_hi_s);
  band.eta_lo_s = std::min(band.eta_lo_s, band.eta_s);
  band.eta_hi_s = std::max(band.eta_hi_s, band.eta_s);
  return band;
}

struct EtaModelOptions {
  /// EWMA smoothing factor for every tracked rate.
  double alpha = 0.3;
  /// z-score scaling the rate stddev into the band; 1.645 claims a ~90%
  /// two-sided interval under the model's rate-noise assumption. The
  /// calibration harness (bench/eta_calibration) measures what the claim is
  /// actually worth.
  double z = 1.645;
  /// Minimum relative half-width of the band around the point estimate:
  /// eta_hi >= eta * (1 + min_rel_width), eta_lo <= eta * (1 - min_rel_width).
  /// Guards the claim against early checkpoints where the EWMA variance has
  /// not seen the run's real rate drift yet (and against LB == UB plans,
  /// where the structural interval is empty).
  double min_rel_width = 0.25;
  /// Emit kEtaSample trace events (schema v4) at every checkpoint. Off by
  /// default: ETA values are wall-clock-derived, so tracing them is only
  /// byte-reproducible with a deterministic now_fn.
  bool trace = false;
  /// Clock. Defaults to MonotonicNanos; tests inject a deterministic clock
  /// to make bands (and their traces) pure functions of the checkpoint
  /// sequence.
  std::function<uint64_t()> now_fn;
};

class EtaModel {
 public:
  explicit EtaModel(EtaModelOptions options = EtaModelOptions())
      : options_(std::move(options)), rates_(options_.alpha) {
    if (!options_.now_fn) options_.now_fn = [] { return MonotonicNanos(); };
  }

  EtaModel(const EtaModel&) = delete;
  EtaModel& operator=(const EtaModel&) = delete;

  /// Re-arms the model for a run over a `num_nodes`-operator plan: resets
  /// every rate and stamps the run epoch.
  void OnRunStart(size_t num_nodes) {
    rates_.Reset(num_nodes);
    latest_ = EtaBand();
    checkpoints_ = 0;
    last_work_ = 0;
    last_ns_ = options_.now_fn();
  }

  /// Seeds the spill ns/byte rates from the engine's SpillDeviceModel (only
  /// meaningful when the device model is enabled).
  void SeedSpillDeviceRates(double write_ns_per_byte,
                            double read_ns_per_byte) {
    rates_.SeedSpillRates(write_ns_per_byte, read_ns_per_byte);
    device_model_seeded_ = write_ns_per_byte > 0 || read_ns_per_byte > 0;
  }

  /// Folds one checkpoint into the rates and returns the sanitized band.
  /// `work` is Curr, [`work_lb`, `work_ub`] the bounds-tracker interval on
  /// total(Q); `spill_pending_units` / `spill_pending_bytes` describe spill
  /// re-read debt (bytes only priced when device rates were seeded — spill
  /// *work units* are already inside the bounds); `telemetry` (optional)
  /// feeds the per-operator rates.
  EtaBand OnCheckpoint(uint64_t work, double work_lb, double work_ub,
                       uint64_t spill_pending_units,
                       double spill_pending_bytes,
                       const TelemetryCollector* telemetry) {
    ++checkpoints_;
    uint64_t now = options_.now_fn();
    rates_.ObserveWork(work - last_work_, now - last_ns_);
    last_work_ = work;
    last_ns_ = now;
    if (telemetry != nullptr && telemetry->num_nodes() > 0) {
      rates_.ObserveNodes(*telemetry);
    }

    const RateEstimate& r = rates_.work_rate();
    if (!r.warm()) {
      latest_ = EtaBand();
      return latest_;
    }
    double curr = static_cast<double>(work);
    double lb = std::max(work_lb, 0.0);
    double ub = std::max(work_ub, lb);
    double rem_lo = std::max(0.0, lb - curr);
    double rem_hi = std::max(0.0, ub - curr);
    // The safe estimator's implied total — worst-case-optimal within
    // [LB, UB] (Theorem 6) — prices the point estimate.
    double rem_mid = std::max(0.0, std::sqrt(lb * ub) - curr);

    double sd = r.stddev();
    double lo_rate = std::max(0.0, r.mean - options_.z * sd);
    double hi_rate = r.mean + options_.z * sd;

    EtaBand band;
    band.eta_s = rem_mid * r.mean / 1e9;
    band.eta_lo_s = rem_lo * lo_rate / 1e9;
    band.eta_hi_s = rem_hi * hi_rate / 1e9;
    // Spill surcharge: pending re-reads priced at the device byte rate. Only
    // when the device model was seeded — without it the aggregate work rate
    // already absorbs spill I/O, and double-charging would bias eta_hi.
    if (device_model_seeded_ && spill_pending_units > 0 &&
        spill_pending_bytes > 0) {
      double read_rate = rates_.spill_read_rate().mean;
      band.eta_hi_s += spill_pending_bytes * read_rate / 1e9;
    }
    // Calibration floor on the claimed interval (see EtaModelOptions).
    band.eta_lo_s =
        std::min(band.eta_lo_s, band.eta_s * (1.0 - options_.min_rel_width));
    band.eta_hi_s =
        std::max(band.eta_hi_s, band.eta_s * (1.0 + options_.min_rel_width));
    latest_ = SanitizeEtaBand(band);
    return latest_;
  }

  const RateTracker& rates() const { return rates_; }
  const EtaBand& latest() const { return latest_; }
  uint64_t checkpoints() const { return checkpoints_; }
  bool trace_enabled() const { return options_.trace; }
  const EtaModelOptions& options() const { return options_; }

 private:
  EtaModelOptions options_;
  RateTracker rates_;
  EtaBand latest_;
  uint64_t checkpoints_ = 0;
  uint64_t last_work_ = 0;
  uint64_t last_ns_ = 0;
  bool device_model_seeded_ = false;
};

// ---------------------------------------------------------------------------
// Offline calibration scoring (compiled in qprog_obs; used by the
// bench/eta_calibration driver, tests, and trace re-scoring).

/// One scored prediction: the band claimed at a checkpoint, the progress
/// fraction it was claimed at, and the wall-clock remaining time actually
/// observed once the query finished.
struct EtaCalibrationSample {
  double progress = 0.0;          // true progress in [0, 1] at the claim
  EtaBand band;                   // the claim
  double actual_remaining_s = 0;  // ground truth
};

/// Aggregates claimed-interval coverage versus observed completion times,
/// bucketed by progress decile — the time-domain analogue of the paper's
/// "can we trust the fraction?" scoring.
class EtaCalibration {
 public:
  struct DecileStats {
    uint64_t samples = 0;
    uint64_t covered = 0;          // actual fell inside [eta_lo, eta_hi]
    double abs_err_sum_s = 0.0;    // |eta - actual|
    double rel_width_sum = 0.0;    // (eta_hi - eta_lo) / max(actual, 1ms)

    double coverage() const {
      return samples > 0
                 ? static_cast<double>(covered) / static_cast<double>(samples)
                 : 0.0;
    }
    double mean_abs_err_s() const {
      return samples > 0 ? abs_err_sum_s / static_cast<double>(samples) : 0.0;
    }
    double mean_rel_width() const {
      return samples > 0 ? rel_width_sum / static_cast<double>(samples) : 0.0;
    }
  };

  /// Folds one finite-band sample; infinite (unknowable) bands are counted
  /// separately and never score as covered.
  void Add(const EtaCalibrationSample& sample);

  /// Decile `d` in 0..9 buckets progress [d/10, (d+1)/10).
  const DecileStats& decile(size_t d) const { return deciles_[d]; }
  DecileStats Overall() const;
  uint64_t infinite_bands() const { return infinite_bands_; }

  /// {"claimed":0.9,"overall":{...},"deciles":[{...}x10],"infinite_bands":n}
  /// with deterministic key order.
  std::string ToJson() const;

 private:
  DecileStats deciles_[10];
  uint64_t infinite_bands_ = 0;
};

}  // namespace qprog

#endif  // QPROG_OBS_ETA_MODEL_H_
