#include "obs/workload_stats.h"

#include <algorithm>

namespace qprog {

void WorkloadStatsRegistry::Record(uint64_t fingerprint,
                                   const WorkloadObservation& obs) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkloadStats& stats = by_template_[fingerprint];
  ++stats.runs;
  if (obs.completed) ++stats.completed_runs;
  stats.total_work += obs.work;
  stats.total_spill_work += obs.spill_work;
  stats.total_root_rows += obs.root_rows;
  stats.total_wall_ns += obs.wall_ns;
  stats.total_peak_buffered_rows += obs.peak_buffered_rows;
  stats.max_peak_buffered_rows =
      std::max(stats.max_peak_buffered_rows, obs.peak_buffered_rows);
  stats.max_work = std::max(stats.max_work, obs.work);
}

void WorkloadStatsRegistry::Merge(uint64_t fingerprint,
                                  const WorkloadStats& incoming) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkloadStats& stats = by_template_[fingerprint];
  stats.runs += incoming.runs;
  stats.completed_runs += incoming.completed_runs;
  stats.total_work += incoming.total_work;
  stats.total_spill_work += incoming.total_spill_work;
  stats.total_root_rows += incoming.total_root_rows;
  stats.total_wall_ns += incoming.total_wall_ns;
  stats.total_peak_buffered_rows += incoming.total_peak_buffered_rows;
  stats.max_peak_buffered_rows =
      std::max(stats.max_peak_buffered_rows, incoming.max_peak_buffered_rows);
  stats.max_work = std::max(stats.max_work, incoming.max_work);
}

WorkloadStats WorkloadStatsRegistry::Lookup(uint64_t fingerprint,
                                            bool* found) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_template_.find(fingerprint);
  if (found != nullptr) *found = it != by_template_.end();
  return it != by_template_.end() ? it->second : WorkloadStats();
}

size_t WorkloadStatsRegistry::num_templates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_template_.size();
}

std::vector<WorkloadStatsRegistry::SnapshotEntry>
WorkloadStatsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotEntry> entries;
  entries.reserve(by_template_.size());
  for (const auto& [fingerprint, stats] : by_template_) {
    entries.push_back({fingerprint, stats});
  }
  std::sort(entries.begin(), entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.fingerprint < b.fingerprint;
            });
  return entries;
}

}  // namespace qprog
