// CrossRunRegistry: what the engine remembers *between* queries — the
// crash-safe store of per-template estimator accuracy and cardinality
// outcomes that turns the paper's within-run machinery into a learning
// system across runs.
//
// Three consumers, one record stream:
//
//  * Robust estimator selection (König et al., PAPERS.md): per template and
//    per estimator, the registry aggregates the terminal progress error —
//    |claimed − true| at each checkpoint, bucketed into true-progress
//    deciles — and SelectEstimator() returns the historically-best fixed
//    estimator among the candidate set once a template has enough runs. A
//    cold template falls back to dne_bounded, deterministically.
//
//  * Prior feedback: per (template fingerprint, plan-node id), rstats-style
//    cardinality-error aggregates (avg / RMS / time-weighted /
//    cost-weighted |log(actual/est)|, following pg_track_optimizer) plus the
//    observed mean actual rows. ApplyPriors() re-seeds a fresh plan's
//    estimated_rows from those observations — feeding the dne family's
//    driver totals — guarded twice: the plan's structural signature must
//    match the recorded one, and every prior must pass a sanity clamp
//    against the node's static per-pass upper bound. estimated_rows is read
//    only by the estimators (never the BoundsTracker), so re-seeding cannot
//    violate Curr <= LB <= UB.
//
//  * Admission priors: each template's WorkloadStats aggregate rides in the
//    same records, so ExportWorkloadStats() rehydrates a
//    WorkloadStatsRegistry after restart and the admission controller's
//    predictions survive a crash.
//
// Persistence is a RegistryLog (storage/registry_log.h): every RecordRun
// appends one observation record and fsyncs; Compact() rewrites the log as
// one aggregate record per template (atomic rename). Recovery replays
// whatever prefix survived — torn tails truncated, corrupt records skipped
// — and the in-memory state is exactly the fold of the recovered records.
//
// Thread-safe: server sessions record concurrently while Submit-time
// selection reads.

#ifndef QPROG_OBS_CROSS_RUN_REGISTRY_H_
#define QPROG_OBS_CROSS_RUN_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/monitor.h"
#include "obs/workload_stats.h"
#include "storage/registry_log.h"

namespace qprog {

class PhysicalPlan;

/// True-progress deciles the estimator error series is bucketed into:
/// bucket d covers (d/10, (d+1)/10].
inline constexpr int kProgressDeciles = 10;

/// rstats-style cardinality-error aggregate for one (template, node) pair.
/// Errors are |log(actual/est)| per run (LogScaleError, obs/accuracy.h).
struct CrossRunNodeStats {
  uint64_t runs = 0;            // runs contributing an error (known estimate)
  double sum_log_err = 0;
  double sum_sq_log_err = 0;
  double sum_time_weighted = 0;  // err * next_ns
  double sum_time_weight = 0;    // next_ns
  double sum_cost_weighted = 0;  // err * actual_rows
  double sum_cost_weight = 0;    // actual_rows
  uint64_t rows_runs = 0;        // runs contributing actual rows (all runs)
  double sum_actual_rows = 0;
  double max_actual_rows = 0;

  double AvgLogError() const {
    return runs > 0 ? sum_log_err / static_cast<double>(runs) : 0;
  }
  double RmsLogError() const;
  /// Emphasises errors in expensive nodes; 0 without wall-time telemetry.
  double TimeWeightedLogError() const {
    return sum_time_weight > 0 ? sum_time_weighted / sum_time_weight : 0;
  }
  /// Emphasises errors in high-cardinality nodes.
  double CostWeightedLogError() const {
    return sum_cost_weight > 0 ? sum_cost_weighted / sum_cost_weight : 0;
  }
  /// The re-seeding prior: mean observed production of this node.
  double MeanActualRows() const {
    return rows_runs > 0 ? sum_actual_rows / static_cast<double>(rows_runs) : -1;
  }
};

/// Terminal progress-error aggregate for one (template, estimator) pair.
/// Per run, the contribution is the run's average |claimed − true| over its
/// checkpoints; deciles record the error of the checkpoint closest to each
/// true-progress decile (the claimed-vs-true series König-style selection
/// scores on).
struct CrossRunEstimatorStats {
  uint64_t runs = 0;
  double sum_avg_abs_err = 0;
  double sum_sq_avg_abs_err = 0;
  double max_abs_err = 0;  // worst single-checkpoint error ever seen
  double decile_sum[kProgressDeciles] = {0};
  uint64_t decile_count[kProgressDeciles] = {0};

  double AvgError() const {
    return runs > 0 ? sum_avg_abs_err / static_cast<double>(runs) : 0;
  }
  /// The selection score: RMS of per-run average errors — punishes the
  /// occasional catastrophic run harder than the mean does.
  double RmsError() const;
  /// Mean abs error at decile `d` (0-based), or -1 with no samples there.
  double DecileError(int d) const;
};

/// Everything remembered about one template, in deterministic (ordered-map)
/// iteration order.
struct CrossRunTemplateStats {
  uint64_t fingerprint = 0;
  /// PlanSignature of the recorded runs. Priors are rejected wholesale when
  /// a new plan's signature differs (plan shape drifted); the signature of
  /// the *latest* recorded run wins, so a changed template relearns.
  uint64_t plan_signature = 0;
  uint64_t runs = 0;
  uint64_t completed_runs = 0;
  std::map<int, CrossRunNodeStats> nodes;
  std::map<std::string, CrossRunEstimatorStats> estimators;
  WorkloadStats workload;
};

/// One run's contribution to the registry — the unit of the on-disk log.
struct CrossRunObservation {
  uint64_t fingerprint = 0;
  uint64_t plan_signature = 0;
  bool completed = false;
  WorkloadObservation workload;

  struct Node {
    int node_id = -1;
    uint64_t actual_rows = 0;
    double estimated_rows = -1;  // < 0 = unknown (no error contribution)
    uint64_t next_ns = 0;
  };
  std::vector<Node> nodes;

  struct Estimator {
    std::string name;
    double avg_abs_err = 0;
    double max_abs_err = 0;
    /// Error at the checkpoint closest to each decile; -1 = no checkpoint
    /// landed near that decile (short runs).
    double decile_err[kProgressDeciles];
    Estimator() {
      for (double& d : decile_err) d = -1;
    }
  };
  std::vector<Estimator> estimators;
};

/// Builds the observation for a finished monitored run. Node and estimator
/// entries exist only for completed runs: true progress is unknowable for an
/// aborted run, and its actual row counts are partial (a lower bound) — so
/// an aborted run contributes workload figures only.
CrossRunObservation BuildCrossRunObservation(uint64_t fingerprint,
                                             const ProgressReport& report,
                                             uint64_t wall_ns);

/// What ApplyPriors did to one plan.
struct CrossRunPriorReport {
  /// Priors existed for the template (>= min_runs and signature checked).
  bool had_history = false;
  /// Plan signature differed from the recorded one; all priors rejected.
  bool signature_mismatch = false;
  int nodes_reseeded = 0;
  /// Priors discarded by the sanity clamp (non-finite, negative, or above
  /// the node's static per-pass upper bound).
  int priors_rejected = 0;
};

class CrossRunRegistry {
 public:
  /// The fixed estimators auto-selection chooses among, in canonical
  /// (tie-breaking) order.
  static const std::vector<std::string>& SelectionCandidates();
  /// The deterministic pick for a template with insufficient history.
  static constexpr const char* kColdFallback = "dne_bounded";

  CrossRunRegistry() = default;
  CrossRunRegistry(const CrossRunRegistry&) = delete;
  CrossRunRegistry& operator=(const CrossRunRegistry&) = delete;

  // --- persistence ---------------------------------------------------------

  /// Attaches (creating if absent) the crash-safe log at `path` and replays
  /// every recoverable record into memory. `recovery` (optional) reports
  /// what was recovered and repaired; records that decode to garbage despite
  /// an intact checksum are counted in decode_skipped(). Without OpenLog the
  /// registry is memory-only.
  Status OpenLog(const std::string& path,
                 RegistryLogOptions options = RegistryLogOptions(),
                 RegistryRecoveryReport* recovery = nullptr);

  /// Folds one observation into memory and, with a log attached, appends
  /// and fsyncs it — after an OK return the observation survives kill-9.
  /// A log-append failure leaves memory updated (this process still
  /// benefits) and returns the error.
  Status RecordRun(const CrossRunObservation& obs);

  /// Memory-only fold (no log I/O) — the replay path and the memory-only
  /// registry's record path.
  void Record(const CrossRunObservation& obs);

  /// Rewrites the log as one aggregate record per template (atomic rename).
  /// Bounds log growth: N runs collapse to num_templates() records.
  Status Compact();

  bool log_open() const;
  uint64_t log_bytes() const;
  uint64_t log_io_retries() const;
  /// Intact-checksum records whose payload failed to decode (version skew,
  /// truncated serialization) — skipped, like checksum corruption.
  uint64_t decode_skipped() const;

  // --- queries -------------------------------------------------------------

  CrossRunTemplateStats Lookup(uint64_t fingerprint,
                               bool* found = nullptr) const;
  size_t num_templates() const;
  /// Completed runs recorded for `fingerprint` (selection's warmth gate).
  uint64_t CompletedRunsFor(uint64_t fingerprint) const;

  /// König-style selection: the candidate with the lowest historical
  /// RmsError for this template, among candidates with >= `min_runs`
  /// completed runs; ties break on canonical candidate order. Returns
  /// kColdFallback when no candidate qualifies. Deterministic given the
  /// registry state.
  std::string SelectEstimator(uint64_t fingerprint,
                              uint64_t min_runs = 3) const;

  /// Re-seeds `plan`'s estimated_rows from the template's observed mean
  /// actual rows, for nodes with >= `min_runs` error-contributing runs.
  /// Guards: the plan's PlanSignature must match the recorded one (else
  /// nothing is touched), and each prior must be finite, non-negative and
  /// <= StaticPerPassUpperBound(node) (else that prior is discarded and
  /// counted). Never touches the BoundsTracker's inputs.
  CrossRunPriorReport ApplyPriors(uint64_t fingerprint, PhysicalPlan* plan,
                                  uint64_t min_runs = 3) const;

  /// Merges every template's workload aggregate into `out` — the admission
  /// controller's restart path.
  void ExportWorkloadStats(WorkloadStatsRegistry* out) const;

  // --- reports -------------------------------------------------------------

  struct Offender {
    uint64_t fingerprint = 0;
    int node_id = -1;
    double rms_log_error = 0;
    uint64_t runs = 0;
  };
  /// (template, node) pairs ranked by RMS cardinality error, worst first.
  std::vector<Offender> WorstOffenders(size_t limit = 10) const;

  /// Deterministic JSON dump of every template's aggregates.
  std::string ToJson() const;

 private:
  void RecordLocked(const CrossRunObservation& obs);
  void MergeAggregateLocked(const CrossRunTemplateStats& stats);
  std::string SelectLocked(uint64_t fingerprint, uint64_t min_runs) const;

  mutable std::mutex mu_;
  std::map<uint64_t, CrossRunTemplateStats> by_template_;
  std::unique_ptr<RegistryLog> log_;
  uint64_t decode_skipped_ = 0;
};

/// Record serialization, exposed for tests that hand-craft logs.
/// Wire format: [u8 record type][u8 version][LE body]. Type 1 = observation,
/// type 2 = template aggregate (Compact output). Unknown types and versions
/// are skipped on replay (forward compatibility), counted as decode skips.
std::string EncodeCrossRunObservation(const CrossRunObservation& obs);
std::string EncodeCrossRunAggregate(const CrossRunTemplateStats& stats);
bool DecodeCrossRunObservation(const std::string& payload,
                               CrossRunObservation* obs);
bool DecodeCrossRunAggregate(const std::string& payload,
                             CrossRunTemplateStats* stats);

}  // namespace qprog

#endif  // QPROG_OBS_CROSS_RUN_REGISTRY_H_
