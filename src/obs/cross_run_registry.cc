#include "obs/cross_run_registry.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/macros.h"
#include "common/strings.h"
#include "core/bounds.h"
#include "exec/plan.h"
#include "obs/accuracy.h"

namespace qprog {

namespace {

// ---- wire helpers (little-endian memcpy, matching the spill codec) --------

constexpr uint8_t kRecordObservation = 1;
constexpr uint8_t kRecordAggregate = 2;
constexpr uint8_t kRecordVersion = 1;

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutDouble(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked sequential reader over a record payload. Every Get*
/// returns false once the payload runs short; decode routines bail out then
/// — a record that lies about its own length is skipped, never trusted.
class Cursor {
 public:
  explicit Cursor(const std::string& data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* v) { return Raw(v, 4); }
  bool GetU64(uint64_t* v) { return Raw(v, 8); }
  bool GetDouble(double* v) { return Raw(v, 8); }
  bool GetString(std::string* s) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    s->assign(data_, pos_, len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Raw(void* v, size_t n) {
    if (pos_ + n > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  const std::string& data_;
  size_t pos_ = 0;
};

void PutWorkloadObservation(std::string* out, const WorkloadObservation& w) {
  PutU8(out, w.completed ? 1 : 0);
  PutU64(out, w.work);
  PutU64(out, w.spill_work);
  PutU64(out, w.peak_buffered_rows);
  PutU64(out, w.root_rows);
  PutU64(out, w.wall_ns);
}

bool GetWorkloadObservation(Cursor* c, WorkloadObservation* w) {
  uint8_t completed = 0;
  if (!c->GetU8(&completed)) return false;
  w->completed = completed != 0;
  return c->GetU64(&w->work) && c->GetU64(&w->spill_work) &&
         c->GetU64(&w->peak_buffered_rows) && c->GetU64(&w->root_rows) &&
         c->GetU64(&w->wall_ns);
}

void PutWorkloadStats(std::string* out, const WorkloadStats& s) {
  PutU64(out, s.runs);
  PutU64(out, s.completed_runs);
  PutU64(out, s.total_work);
  PutU64(out, s.total_spill_work);
  PutU64(out, s.total_root_rows);
  PutU64(out, s.total_wall_ns);
  PutU64(out, s.total_peak_buffered_rows);
  PutU64(out, s.max_peak_buffered_rows);
  PutU64(out, s.max_work);
}

bool GetWorkloadStats(Cursor* c, WorkloadStats* s) {
  return c->GetU64(&s->runs) && c->GetU64(&s->completed_runs) &&
         c->GetU64(&s->total_work) && c->GetU64(&s->total_spill_work) &&
         c->GetU64(&s->total_root_rows) && c->GetU64(&s->total_wall_ns) &&
         c->GetU64(&s->total_peak_buffered_rows) &&
         c->GetU64(&s->max_peak_buffered_rows) && c->GetU64(&s->max_work);
}

/// JSON number at telemetry precision (accuracy.cc idiom).
std::string Num(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  return StringPrintf("%.6g", v);
}

}  // namespace

double CrossRunNodeStats::RmsLogError() const {
  return runs > 0 ? std::sqrt(sum_sq_log_err / static_cast<double>(runs)) : 0;
}

double CrossRunEstimatorStats::RmsError() const {
  return runs > 0 ? std::sqrt(sum_sq_avg_abs_err / static_cast<double>(runs))
                  : 0;
}

double CrossRunEstimatorStats::DecileError(int d) const {
  if (d < 0 || d >= kProgressDeciles || decile_count[d] == 0) return -1;
  return decile_sum[d] / static_cast<double>(decile_count[d]);
}

CrossRunObservation BuildCrossRunObservation(uint64_t fingerprint,
                                             const ProgressReport& report,
                                             uint64_t wall_ns) {
  CrossRunObservation obs;
  obs.fingerprint = fingerprint;
  obs.plan_signature = report.plan_signature;
  obs.completed = report.completed();
  obs.workload.completed = report.completed();
  obs.workload.work = report.total_work;
  obs.workload.spill_work = report.spill_work;
  obs.workload.peak_buffered_rows = report.peak_buffered_rows;
  obs.workload.root_rows = report.root_rows;
  obs.workload.wall_ns = wall_ns;
  if (!report.completed()) return obs;

  obs.nodes.reserve(report.node_stats.size());
  for (const NodeRunStat& n : report.node_stats) {
    CrossRunObservation::Node node;
    node.node_id = n.node_id;
    node.actual_rows = n.actual_rows;
    node.estimated_rows = n.estimated_rows;
    node.next_ns = n.next_ns;
    obs.nodes.push_back(node);
  }

  obs.estimators.reserve(report.names.size());
  for (size_t i = 0; i < report.names.size(); ++i) {
    CrossRunObservation::Estimator e;
    e.name = report.names[i];
    EstimatorMetrics m = report.Metrics(i);
    e.avg_abs_err = m.avg_abs_err;
    e.max_abs_err = m.max_abs_err;
    // Decile series: mean |claimed - true| over the checkpoints falling in
    // each true-progress decile (d/10, (d+1)/10].
    double sums[kProgressDeciles] = {0};
    uint64_t counts[kProgressDeciles] = {0};
    for (const Checkpoint& cp : report.checkpoints) {
      int bucket = cp.true_progress >= 1.0
                       ? kProgressDeciles - 1
                       : static_cast<int>(cp.true_progress * kProgressDeciles);
      if (bucket < 0) bucket = 0;
      sums[bucket] += std::fabs(cp.estimates[i] - cp.true_progress);
      ++counts[bucket];
    }
    for (int d = 0; d < kProgressDeciles; ++d) {
      e.decile_err[d] =
          counts[d] > 0 ? sums[d] / static_cast<double>(counts[d]) : -1;
    }
    obs.estimators.push_back(std::move(e));
  }
  return obs;
}

// ---- serialization --------------------------------------------------------

std::string EncodeCrossRunObservation(const CrossRunObservation& obs) {
  std::string out;
  PutU8(&out, kRecordObservation);
  PutU8(&out, kRecordVersion);
  PutU64(&out, obs.fingerprint);
  PutU64(&out, obs.plan_signature);
  PutU8(&out, obs.completed ? 1 : 0);
  PutWorkloadObservation(&out, obs.workload);
  PutU32(&out, static_cast<uint32_t>(obs.nodes.size()));
  for (const CrossRunObservation::Node& n : obs.nodes) {
    PutU32(&out, static_cast<uint32_t>(n.node_id));
    PutU64(&out, n.actual_rows);
    PutDouble(&out, n.estimated_rows);
    PutU64(&out, n.next_ns);
  }
  PutU32(&out, static_cast<uint32_t>(obs.estimators.size()));
  for (const CrossRunObservation::Estimator& e : obs.estimators) {
    PutString(&out, e.name);
    PutDouble(&out, e.avg_abs_err);
    PutDouble(&out, e.max_abs_err);
    for (double d : e.decile_err) PutDouble(&out, d);
  }
  return out;
}

bool DecodeCrossRunObservation(const std::string& payload,
                               CrossRunObservation* obs) {
  Cursor c(payload);
  uint8_t type = 0, version = 0, completed = 0;
  if (!c.GetU8(&type) || type != kRecordObservation) return false;
  if (!c.GetU8(&version) || version != kRecordVersion) return false;
  if (!c.GetU64(&obs->fingerprint) || !c.GetU64(&obs->plan_signature) ||
      !c.GetU8(&completed) || !GetWorkloadObservation(&c, &obs->workload)) {
    return false;
  }
  obs->completed = completed != 0;
  uint32_t num_nodes = 0;
  if (!c.GetU32(&num_nodes)) return false;
  obs->nodes.clear();
  for (uint32_t i = 0; i < num_nodes; ++i) {
    CrossRunObservation::Node n;
    uint32_t id = 0;
    if (!c.GetU32(&id) || !c.GetU64(&n.actual_rows) ||
        !c.GetDouble(&n.estimated_rows) || !c.GetU64(&n.next_ns)) {
      return false;
    }
    n.node_id = static_cast<int>(id);
    obs->nodes.push_back(n);
  }
  uint32_t num_estimators = 0;
  if (!c.GetU32(&num_estimators)) return false;
  obs->estimators.clear();
  for (uint32_t i = 0; i < num_estimators; ++i) {
    CrossRunObservation::Estimator e;
    if (!c.GetString(&e.name) || !c.GetDouble(&e.avg_abs_err) ||
        !c.GetDouble(&e.max_abs_err)) {
      return false;
    }
    for (double& d : e.decile_err) {
      if (!c.GetDouble(&d)) return false;
    }
    obs->estimators.push_back(std::move(e));
  }
  return c.AtEnd();
}

std::string EncodeCrossRunAggregate(const CrossRunTemplateStats& stats) {
  std::string out;
  PutU8(&out, kRecordAggregate);
  PutU8(&out, kRecordVersion);
  PutU64(&out, stats.fingerprint);
  PutU64(&out, stats.plan_signature);
  PutU64(&out, stats.runs);
  PutU64(&out, stats.completed_runs);
  PutWorkloadStats(&out, stats.workload);
  PutU32(&out, static_cast<uint32_t>(stats.nodes.size()));
  for (const auto& [node_id, n] : stats.nodes) {
    PutU32(&out, static_cast<uint32_t>(node_id));
    PutU64(&out, n.runs);
    PutDouble(&out, n.sum_log_err);
    PutDouble(&out, n.sum_sq_log_err);
    PutDouble(&out, n.sum_time_weighted);
    PutDouble(&out, n.sum_time_weight);
    PutDouble(&out, n.sum_cost_weighted);
    PutDouble(&out, n.sum_cost_weight);
    PutU64(&out, n.rows_runs);
    PutDouble(&out, n.sum_actual_rows);
    PutDouble(&out, n.max_actual_rows);
  }
  PutU32(&out, static_cast<uint32_t>(stats.estimators.size()));
  for (const auto& [name, e] : stats.estimators) {
    PutString(&out, name);
    PutU64(&out, e.runs);
    PutDouble(&out, e.sum_avg_abs_err);
    PutDouble(&out, e.sum_sq_avg_abs_err);
    PutDouble(&out, e.max_abs_err);
    for (double d : e.decile_sum) PutDouble(&out, d);
    for (uint64_t n : e.decile_count) PutU64(&out, n);
  }
  return out;
}

bool DecodeCrossRunAggregate(const std::string& payload,
                             CrossRunTemplateStats* stats) {
  Cursor c(payload);
  uint8_t type = 0, version = 0;
  if (!c.GetU8(&type) || type != kRecordAggregate) return false;
  if (!c.GetU8(&version) || version != kRecordVersion) return false;
  if (!c.GetU64(&stats->fingerprint) || !c.GetU64(&stats->plan_signature) ||
      !c.GetU64(&stats->runs) || !c.GetU64(&stats->completed_runs) ||
      !GetWorkloadStats(&c, &stats->workload)) {
    return false;
  }
  uint32_t num_nodes = 0;
  if (!c.GetU32(&num_nodes)) return false;
  stats->nodes.clear();
  for (uint32_t i = 0; i < num_nodes; ++i) {
    uint32_t id = 0;
    CrossRunNodeStats n;
    if (!c.GetU32(&id) || !c.GetU64(&n.runs) || !c.GetDouble(&n.sum_log_err) ||
        !c.GetDouble(&n.sum_sq_log_err) || !c.GetDouble(&n.sum_time_weighted) ||
        !c.GetDouble(&n.sum_time_weight) || !c.GetDouble(&n.sum_cost_weighted) ||
        !c.GetDouble(&n.sum_cost_weight) || !c.GetU64(&n.rows_runs) ||
        !c.GetDouble(&n.sum_actual_rows) || !c.GetDouble(&n.max_actual_rows)) {
      return false;
    }
    stats->nodes[static_cast<int>(id)] = n;
  }
  uint32_t num_estimators = 0;
  if (!c.GetU32(&num_estimators)) return false;
  stats->estimators.clear();
  for (uint32_t i = 0; i < num_estimators; ++i) {
    std::string name;
    CrossRunEstimatorStats e;
    if (!c.GetString(&name) || !c.GetU64(&e.runs) ||
        !c.GetDouble(&e.sum_avg_abs_err) ||
        !c.GetDouble(&e.sum_sq_avg_abs_err) || !c.GetDouble(&e.max_abs_err)) {
      return false;
    }
    for (double& d : e.decile_sum) {
      if (!c.GetDouble(&d)) return false;
    }
    for (uint64_t& n : e.decile_count) {
      if (!c.GetU64(&n)) return false;
    }
    stats->estimators[name] = e;
  }
  return c.AtEnd();
}

// ---- registry -------------------------------------------------------------

const std::vector<std::string>& CrossRunRegistry::SelectionCandidates() {
  static const std::vector<std::string>* kCandidates =
      new std::vector<std::string>{"dne", "dne_pessimistic", "pmax", "safe",
                                   "hybrid"};
  return *kCandidates;
}

void CrossRunRegistry::RecordLocked(const CrossRunObservation& obs) {
  CrossRunTemplateStats& stats = by_template_[obs.fingerprint];
  stats.fingerprint = obs.fingerprint;
  if (stats.runs > 0 && obs.plan_signature != stats.plan_signature) {
    // The template's plan shape drifted (new index, reordered join): the old
    // shape's node and estimator history describes different operators, so
    // the template relearns from scratch. Workload figures stay — they
    // describe the template's resource profile, which admission keys on
    // regardless of shape.
    stats.nodes.clear();
    stats.estimators.clear();
  }
  stats.plan_signature = obs.plan_signature;
  ++stats.runs;
  if (obs.completed) ++stats.completed_runs;

  WorkloadStats& w = stats.workload;
  ++w.runs;
  if (obs.workload.completed) ++w.completed_runs;
  w.total_work += obs.workload.work;
  w.total_spill_work += obs.workload.spill_work;
  w.total_root_rows += obs.workload.root_rows;
  w.total_wall_ns += obs.workload.wall_ns;
  w.total_peak_buffered_rows += obs.workload.peak_buffered_rows;
  w.max_peak_buffered_rows =
      std::max(w.max_peak_buffered_rows, obs.workload.peak_buffered_rows);
  w.max_work = std::max(w.max_work, obs.workload.work);

  if (!obs.completed) return;  // partial counts would bias the priors

  for (const CrossRunObservation::Node& n : obs.nodes) {
    CrossRunNodeStats& ns = stats.nodes[n.node_id];
    ++ns.rows_runs;
    double actual = static_cast<double>(n.actual_rows);
    ns.sum_actual_rows += actual;
    ns.max_actual_rows = std::max(ns.max_actual_rows, actual);
    double err = LogScaleError(actual, n.estimated_rows);
    if (err < 0) continue;  // no planner estimate -> no error term
    ++ns.runs;
    ns.sum_log_err += err;
    ns.sum_sq_log_err += err * err;
    ns.sum_time_weighted += err * static_cast<double>(n.next_ns);
    ns.sum_time_weight += static_cast<double>(n.next_ns);
    ns.sum_cost_weighted += err * actual;
    ns.sum_cost_weight += actual;
  }

  for (const CrossRunObservation::Estimator& e : obs.estimators) {
    CrossRunEstimatorStats& es = stats.estimators[e.name];
    ++es.runs;
    es.sum_avg_abs_err += e.avg_abs_err;
    es.sum_sq_avg_abs_err += e.avg_abs_err * e.avg_abs_err;
    es.max_abs_err = std::max(es.max_abs_err, e.max_abs_err);
    for (int d = 0; d < kProgressDeciles; ++d) {
      if (e.decile_err[d] < 0) continue;
      es.decile_sum[d] += e.decile_err[d];
      ++es.decile_count[d];
    }
  }
}

void CrossRunRegistry::MergeAggregateLocked(
    const CrossRunTemplateStats& incoming) {
  CrossRunTemplateStats& stats = by_template_[incoming.fingerprint];
  stats.fingerprint = incoming.fingerprint;
  if (stats.runs > 0 && incoming.plan_signature != stats.plan_signature) {
    stats.nodes.clear();
    stats.estimators.clear();
  }
  stats.plan_signature = incoming.plan_signature;
  stats.runs += incoming.runs;
  stats.completed_runs += incoming.completed_runs;

  WorkloadStats& w = stats.workload;
  w.runs += incoming.workload.runs;
  w.completed_runs += incoming.workload.completed_runs;
  w.total_work += incoming.workload.total_work;
  w.total_spill_work += incoming.workload.total_spill_work;
  w.total_root_rows += incoming.workload.total_root_rows;
  w.total_wall_ns += incoming.workload.total_wall_ns;
  w.total_peak_buffered_rows += incoming.workload.total_peak_buffered_rows;
  w.max_peak_buffered_rows = std::max(w.max_peak_buffered_rows,
                                      incoming.workload.max_peak_buffered_rows);
  w.max_work = std::max(w.max_work, incoming.workload.max_work);

  for (const auto& [node_id, in] : incoming.nodes) {
    CrossRunNodeStats& ns = stats.nodes[node_id];
    ns.runs += in.runs;
    ns.sum_log_err += in.sum_log_err;
    ns.sum_sq_log_err += in.sum_sq_log_err;
    ns.sum_time_weighted += in.sum_time_weighted;
    ns.sum_time_weight += in.sum_time_weight;
    ns.sum_cost_weighted += in.sum_cost_weighted;
    ns.sum_cost_weight += in.sum_cost_weight;
    ns.rows_runs += in.rows_runs;
    ns.sum_actual_rows += in.sum_actual_rows;
    ns.max_actual_rows = std::max(ns.max_actual_rows, in.max_actual_rows);
  }
  for (const auto& [name, in] : incoming.estimators) {
    CrossRunEstimatorStats& es = stats.estimators[name];
    es.runs += in.runs;
    es.sum_avg_abs_err += in.sum_avg_abs_err;
    es.sum_sq_avg_abs_err += in.sum_sq_avg_abs_err;
    es.max_abs_err = std::max(es.max_abs_err, in.max_abs_err);
    for (int d = 0; d < kProgressDeciles; ++d) {
      es.decile_sum[d] += in.decile_sum[d];
      es.decile_count[d] += in.decile_count[d];
    }
  }
}

Status CrossRunRegistry::OpenLog(const std::string& path,
                                 RegistryLogOptions options,
                                 RegistryRecoveryReport* recovery) {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_ != nullptr) return Internal("cross-run registry log already open");
  auto visitor = [this](const std::string& payload) {
    // Replay under mu_ (held by OpenLog). A record whose checksum passed but
    // whose body does not decode — version skew, a short serialization — is
    // skipped like checksum corruption: the registry never trusts bytes it
    // cannot fully parse.
    if (payload.empty()) {
      ++decode_skipped_;
      return;
    }
    uint8_t type = static_cast<uint8_t>(payload[0]);
    if (type == kRecordObservation) {
      CrossRunObservation obs;
      if (DecodeCrossRunObservation(payload, &obs)) {
        RecordLocked(obs);
        return;
      }
    } else if (type == kRecordAggregate) {
      CrossRunTemplateStats stats;
      if (DecodeCrossRunAggregate(payload, &stats)) {
        MergeAggregateLocked(stats);
        return;
      }
    }
    ++decode_skipped_;
  };
  QPROG_ASSIGN_OR_RETURN(log_, RegistryLog::Open(path, std::move(options),
                                                 visitor, recovery));
  return OkStatus();
}

Status CrossRunRegistry::RecordRun(const CrossRunObservation& obs) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordLocked(obs);
  if (log_ == nullptr) return OkStatus();
  QPROG_RETURN_IF_ERROR(log_->Append(EncodeCrossRunObservation(obs)));
  return log_->Sync();
}

void CrossRunRegistry::Record(const CrossRunObservation& obs) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordLocked(obs);
}

Status CrossRunRegistry::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_ == nullptr) return Internal("cross-run registry has no log");
  std::vector<std::string> records;
  records.reserve(by_template_.size());
  for (const auto& [fingerprint, stats] : by_template_) {
    records.push_back(EncodeCrossRunAggregate(stats));
  }
  return log_->Compact(records);
}

bool CrossRunRegistry::log_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_ != nullptr;
}

uint64_t CrossRunRegistry::log_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_ != nullptr ? log_->bytes() : 0;
}

uint64_t CrossRunRegistry::log_io_retries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_ != nullptr ? log_->io_retries() : 0;
}

uint64_t CrossRunRegistry::decode_skipped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decode_skipped_;
}

CrossRunTemplateStats CrossRunRegistry::Lookup(uint64_t fingerprint,
                                               bool* found) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_template_.find(fingerprint);
  if (found != nullptr) *found = it != by_template_.end();
  return it != by_template_.end() ? it->second : CrossRunTemplateStats();
}

size_t CrossRunRegistry::num_templates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_template_.size();
}

uint64_t CrossRunRegistry::CompletedRunsFor(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_template_.find(fingerprint);
  return it != by_template_.end() ? it->second.completed_runs : 0;
}

std::string CrossRunRegistry::SelectLocked(uint64_t fingerprint,
                                           uint64_t min_runs) const {
  auto it = by_template_.find(fingerprint);
  if (it == by_template_.end()) return kColdFallback;
  const CrossRunTemplateStats& stats = it->second;
  const std::string* best = nullptr;
  double best_score = 0;
  for (const std::string& candidate : SelectionCandidates()) {
    auto es = stats.estimators.find(candidate);
    if (es == stats.estimators.end() || es->second.runs < min_runs) continue;
    double score = es->second.RmsError();
    // Strict < keeps the first (canonical-order) candidate on ties.
    if (best == nullptr || score < best_score) {
      best = &candidate;
      best_score = score;
    }
  }
  return best != nullptr ? *best : kColdFallback;
}

std::string CrossRunRegistry::SelectEstimator(uint64_t fingerprint,
                                              uint64_t min_runs) const {
  std::lock_guard<std::mutex> lock(mu_);
  return SelectLocked(fingerprint, min_runs);
}

CrossRunPriorReport CrossRunRegistry::ApplyPriors(uint64_t fingerprint,
                                                  PhysicalPlan* plan,
                                                  uint64_t min_runs) const {
  CrossRunPriorReport report;
  QPROG_CHECK(plan != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_template_.find(fingerprint);
  if (it == by_template_.end() || it->second.completed_runs < min_runs) {
    return report;
  }
  const CrossRunTemplateStats& stats = it->second;
  if (PlanSignature(*plan) != stats.plan_signature) {
    // Shape drift: the recorded node ids describe a different tree. Touch
    // nothing — a wrong prior is worse than no prior.
    report.signature_mismatch = true;
    return report;
  }
  report.had_history = true;
  for (PhysicalOperator* op : plan->nodes()) {
    auto ns = stats.nodes.find(op->node_id());
    if (ns == stats.nodes.end() || ns->second.rows_runs < min_runs) continue;
    double prior = ns->second.MeanActualRows();
    // Sanity clamp: a prior inconsistent with what the plan can statically
    // produce in one pass is rejected, not trusted. estimated_rows only
    // feeds the dne family's driver totals (never the BoundsTracker), so an
    // accepted prior cannot violate Curr <= LB <= UB.
    double static_ub = StaticPerPassUpperBound(op);
    if (!std::isfinite(prior) || prior < 0 ||
        (std::isfinite(static_ub) && static_ub >= 0 && prior > static_ub)) {
      ++report.priors_rejected;
      continue;
    }
    op->set_estimated_rows(prior);
    ++report.nodes_reseeded;
  }
  return report;
}

void CrossRunRegistry::ExportWorkloadStats(WorkloadStatsRegistry* out) const {
  QPROG_CHECK(out != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [fingerprint, stats] : by_template_) {
    if (stats.workload.runs == 0) continue;
    out->Merge(fingerprint, stats.workload);
  }
}

std::vector<CrossRunRegistry::Offender> CrossRunRegistry::WorstOffenders(
    size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Offender> all;
  for (const auto& [fingerprint, stats] : by_template_) {
    for (const auto& [node_id, ns] : stats.nodes) {
      if (ns.runs == 0) continue;
      all.push_back({fingerprint, node_id, ns.RmsLogError(), ns.runs});
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Offender& a, const Offender& b) {
                     return a.rms_log_error > b.rms_log_error;
                   });
  if (all.size() > limit) all.resize(limit);
  return all;
}

std::string CrossRunRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"templates\":[";
  bool first_template = true;
  for (const auto& [fingerprint, stats] : by_template_) {
    if (!first_template) out += ',';
    first_template = false;
    out += StringPrintf(
        "{\"fingerprint\":%llu,\"plan_signature\":%llu,\"runs\":%llu,"
        "\"completed_runs\":%llu",
        static_cast<unsigned long long>(fingerprint),
        static_cast<unsigned long long>(stats.plan_signature),
        static_cast<unsigned long long>(stats.runs),
        static_cast<unsigned long long>(stats.completed_runs));
    out += ",\"nodes\":[";
    bool first = true;
    for (const auto& [node_id, ns] : stats.nodes) {
      if (!first) out += ',';
      first = false;
      out += StringPrintf(
          "{\"node\":%d,\"runs\":%llu,\"avg_log_error\":%s,"
          "\"rms_log_error\":%s,\"twa_log_error\":%s,\"cwa_log_error\":%s,"
          "\"mean_actual_rows\":%s}",
          node_id, static_cast<unsigned long long>(ns.runs),
          Num(ns.AvgLogError()).c_str(), Num(ns.RmsLogError()).c_str(),
          Num(ns.TimeWeightedLogError()).c_str(),
          Num(ns.CostWeightedLogError()).c_str(),
          Num(ns.MeanActualRows()).c_str());
    }
    out += "],\"estimators\":[";
    first = true;
    for (const auto& [name, es] : stats.estimators) {
      if (!first) out += ',';
      first = false;
      out += StringPrintf(
          "{\"name\":\"%s\",\"runs\":%llu,\"avg_err\":%s,\"rms_err\":%s,"
          "\"max_err\":%s,\"deciles\":[",
          name.c_str(), static_cast<unsigned long long>(es.runs),
          Num(es.AvgError()).c_str(), Num(es.RmsError()).c_str(),
          Num(es.max_abs_err).c_str());
      for (int d = 0; d < kProgressDeciles; ++d) {
        if (d > 0) out += ',';
        double err = es.DecileError(d);
        out += err < 0 ? "null" : Num(err);
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace qprog
