#include "obs/accuracy.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "obs/run_summary.h"

namespace qprog {

namespace {

/// JSON number at 6 significant digits (telemetry precision, not replay
/// precision — the trace is the bit-exact record).
std::string Num(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  return StringPrintf("%.6g", v);
}

}  // namespace

double LogScaleError(double actual_rows, double estimated_rows) {
  if (estimated_rows < 0) return -1;
  double a = actual_rows < 1 ? 1 : actual_rows;
  double e = estimated_rows < 1 ? 1 : estimated_rows;
  return std::fabs(std::log(a / e));
}

RunTelemetry BuildRunTelemetry(const PhysicalPlan& plan, const ExecContext& ctx,
                               const ProgressReport& report,
                               const TelemetryCollector* collector) {
  RunTelemetry t;
  t.summary = FormatRunSummary(report);
  t.termination = report.termination;
  t.total_work = report.total_work;
  t.root_rows = report.root_rows;
  t.mu = report.mu;

  // --- per-node cardinality accuracy ---------------------------------------
  t.nodes.reserve(plan.num_nodes());
  for (const PhysicalOperator* op : plan.nodes()) {
    NodeAccuracy n;
    n.node_id = op->node_id();
    n.label = op->label();
    // ProgressState::rows_produced is rows handed to the parent — for a
    // merged-predicate scan the raw counter holds examined rows instead.
    ProgressState state;
    op->FillProgressState(ctx, &state);
    n.actual_rows = state.rows_produced;
    n.estimated_rows = op->estimated_rows();
    n.log_error = LogScaleError(static_cast<double>(n.actual_rows),
                                n.estimated_rows);
    if (collector != nullptr &&
        static_cast<size_t>(n.node_id) < plan.num_nodes()) {
      const NodeBoundsRecord& b = collector->node_bounds(n.node_id);
      if (b.seen) {
        n.has_bounds = true;
        n.first_lb = b.first_lb;
        n.first_ub = b.first_ub;
        n.bound_refinements = b.refinements;
        double actual = static_cast<double>(n.actual_rows);
        n.within_first_bounds = actual >= b.first_lb && actual <= b.first_ub;
        double mid = std::sqrt(b.first_lb * b.first_ub);
        n.bounds_log_error = mid > 0 || n.actual_rows > 0
                                 ? LogScaleError(actual, mid)
                                 : 0;
      }
      n.next_ns = collector->stats(n.node_id).next_ns;
    }
    t.nodes.push_back(std::move(n));
  }

  // pg_track_optimizer aggregates over the nodes with a known estimate.
  double sum = 0, sum_sq = 0, weighted = 0, weight = 0;
  size_t known = 0;
  for (const NodeAccuracy& n : t.nodes) {
    if (n.log_error < 0) continue;
    ++known;
    sum += n.log_error;
    sum_sq += n.log_error * n.log_error;
    weighted += n.log_error * static_cast<double>(n.next_ns);
    weight += static_cast<double>(n.next_ns);
  }
  if (known > 0) {
    t.avg_log_error = sum / static_cast<double>(known);
    t.rms_log_error = std::sqrt(sum_sq / static_cast<double>(known));
    t.twa_log_error = weight > 0 ? weighted / weight : 0;
  }
  for (const NodeAccuracy& n : t.nodes) {
    if (n.log_error >= 0) t.worst_nodes.push_back(n.node_id);
  }
  std::stable_sort(t.worst_nodes.begin(), t.worst_nodes.end(),
                   [&](int a, int b) {
                     return t.nodes[static_cast<size_t>(a)].log_error >
                            t.nodes[static_cast<size_t>(b)].log_error;
                   });

  // --- per-estimator accuracy ----------------------------------------------
  // Residuals need true progress, which is knowable only for a completed run;
  // for an aborted run the estimator entries carry names but no scores.
  t.estimators.reserve(report.names.size());
  for (size_t i = 0; i < report.names.size(); ++i) {
    EstimatorAccuracy e;
    e.name = report.names[i];
    if (report.completed()) {
      e.metrics = report.Metrics(i);
      e.residuals.reserve(report.checkpoints.size());
      double abs_sum = 0;
      for (const Checkpoint& cp : report.checkpoints) {
        double r = cp.estimates[i] - cp.true_progress;
        e.residuals.push_back(r);
        double a = std::fabs(r);
        abs_sum += a;
        if (a > e.max_abs_residual) e.max_abs_residual = a;
      }
      if (!e.residuals.empty()) {
        e.avg_abs_residual =
            abs_sum / static_cast<double>(e.residuals.size());
      }
    }
    t.estimators.push_back(std::move(e));
  }
  for (const EstimatorAccuracy& e : t.estimators) {
    t.worst_estimators.push_back(e.name);
  }
  std::stable_sort(
      t.worst_estimators.begin(), t.worst_estimators.end(),
      [&](const std::string& a, const std::string& b) {
        auto score = [&](const std::string& name) {
          for (const EstimatorAccuracy& e : t.estimators) {
            if (e.name == name) return e.avg_abs_residual;
          }
          return 0.0;
        };
        return score(a) > score(b);
      });
  return t;
}

std::string RunTelemetry::ToJson() const {
  std::string out = "{";
  out += StringPrintf(
      "\"termination\":\"%s\",\"total_work\":%llu,\"root_rows\":%llu,"
      "\"mu\":%s",
      TerminationReasonToString(termination),
      static_cast<unsigned long long>(total_work),
      static_cast<unsigned long long>(root_rows), Num(mu).c_str());
  out += ",\"avg_log_error\":" + Num(avg_log_error);
  out += ",\"rms_log_error\":" + Num(rms_log_error);
  out += ",\"twa_log_error\":" + Num(twa_log_error);

  out += ",\"nodes\":[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeAccuracy& n = nodes[i];
    if (i > 0) out += ',';
    out += StringPrintf(
        "{\"node\":%d,\"label\":\"%s\",\"actual_rows\":%llu,"
        "\"estimated_rows\":%s,\"log_error\":%s",
        n.node_id, n.label.c_str(),
        static_cast<unsigned long long>(n.actual_rows),
        n.estimated_rows < 0 ? "null" : Num(n.estimated_rows).c_str(),
        n.log_error < 0 ? "null" : Num(n.log_error).c_str());
    if (n.has_bounds) {
      out += StringPrintf(
          ",\"first_lb\":%s,\"first_ub\":%s,\"bounds_log_error\":%s,"
          "\"within_first_bounds\":%s,\"bound_refinements\":%llu",
          Num(n.first_lb).c_str(), Num(n.first_ub).c_str(),
          n.bounds_log_error < 0 ? "null" : Num(n.bounds_log_error).c_str(),
          n.within_first_bounds ? "true" : "false",
          static_cast<unsigned long long>(n.bound_refinements));
    }
    if (n.next_ns > 0) {
      out += StringPrintf(",\"next_ns\":%llu",
                          static_cast<unsigned long long>(n.next_ns));
    }
    out += '}';
  }
  out += "],\"estimators\":[";
  for (size_t i = 0; i < estimators.size(); ++i) {
    const EstimatorAccuracy& e = estimators[i];
    if (i > 0) out += ',';
    out += StringPrintf(
        "{\"name\":\"%s\",\"avg_abs_residual\":%s,\"max_abs_residual\":%s,"
        "\"avg_abs_err\":%s,\"max_abs_err\":%s,\"avg_ratio_err\":%s,"
        "\"max_ratio_err\":%s}",
        e.name.c_str(), Num(e.avg_abs_residual).c_str(),
        Num(e.max_abs_residual).c_str(), Num(e.metrics.avg_abs_err).c_str(),
        Num(e.metrics.max_abs_err).c_str(),
        Num(e.metrics.avg_ratio_err).c_str(),
        Num(e.metrics.max_ratio_err).c_str());
  }
  out += "],\"worst_nodes\":[";
  for (size_t i = 0; i < worst_nodes.size(); ++i) {
    if (i > 0) out += ',';
    out += StringPrintf("%d", worst_nodes[i]);
  }
  out += "],\"worst_estimators\":[";
  for (size_t i = 0; i < worst_estimators.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + worst_estimators[i] + '"';
  }
  out += "]}";
  return out;
}

}  // namespace qprog
