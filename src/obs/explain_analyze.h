// EXPLAIN ANALYZE-style post-execution plan rendering: the plan tree
// annotated per node with actual rows, getnext calls, share of the paper's
// work measure, cardinality log-error, and (optionally) wall time from an
// attached TelemetryCollector.
//
// Wall times are off by default so the output is deterministic — the golden
// test in tests/obs_test.cc pins the timing-free rendering byte for byte.

#ifndef QPROG_OBS_EXPLAIN_ANALYZE_H_
#define QPROG_OBS_EXPLAIN_ANALYZE_H_

#include <limits>
#include <string>

#include "exec/plan.h"
#include "obs/cross_run_registry.h"
#include "obs/telemetry.h"

namespace qprog {

struct ExplainAnalyzeOptions {
  /// Per-node call counts, wall times and bounds history. Optional; without
  /// it the rendering still shows rows, work share and estimate error.
  const TelemetryCollector* telemetry = nullptr;

  /// Include wall-clock columns (open/next/close time). Requires
  /// `telemetry`; leave off for deterministic output.
  bool include_timing = false;

  /// When both are set (>= 0), the header adds the progress bar quantities:
  /// the estimate, and remaining time projected via
  /// EstimateRemainingSeconds (rendered "--" when not computable).
  double progress_estimate = -1;
  double elapsed_seconds = -1;

  /// When true, the header adds the EtaModel's calibrated band:
  /// `eta=1.2s band=[0.9s,1.8s]`. Infinite components (no model sample yet,
  /// e.g. before the first checkpoint) render "--" exactly like the
  /// remaining-work column. Fill the three figures from a Checkpoint or
  /// ProgressReport (eta_seconds / eta_lo_seconds / eta_hi_seconds).
  bool show_eta = false;
  double eta_seconds = std::numeric_limits<double>::infinity();
  double eta_lo_seconds = std::numeric_limits<double>::infinity();
  double eta_hi_seconds = std::numeric_limits<double>::infinity();

  /// Cross-run history column: with both set, nodes whose (fingerprint,
  /// node id) pair has recorded history gain `xrun_err=<rms> runs=<n>` —
  /// this template's historical RMS cardinality log-error at that node
  /// (obs/cross_run_registry.h). Deterministic given the registry state.
  const CrossRunRegistry* cross_run = nullptr;
  uint64_t fingerprint = 0;
};

/// Renders "12.3s", "450ms" style durations; "--" for +/-inf and NaN (an
/// unstarted query has no finite projection).
std::string FormatRemainingSeconds(double seconds);

/// Renders the executed plan as an annotated tree. `ctx` must be the context
/// the plan ran under.
std::string ExplainAnalyze(const PhysicalPlan& plan, const ExecContext& ctx,
                           const ExplainAnalyzeOptions& opts = {});

}  // namespace qprog

#endif  // QPROG_OBS_EXPLAIN_ANALYZE_H_
