#include "obs/replay.h"

#include <cmath>

#include "common/strings.h"

namespace qprog {

namespace {

/// Mirror of the monitor's estimate sanitization (core/monitor.cc): a
/// replayed re-evaluation must clamp exactly like the live path.
double SanitizeEstimate(double estimate) {
  if (std::isnan(estimate)) return 0.0;
  if (estimate < 0.0) return 0.0;
  if (estimate > 1.0) return 1.0;
  return estimate;
}

StatusOr<TerminationReason> ParseTermination(const std::string& name) {
  for (TerminationReason r :
       {TerminationReason::kCompleted, TerminationReason::kCancelled,
        TerminationReason::kDeadlineExceeded,
        TerminationReason::kBudgetExhausted, TerminationReason::kFault}) {
    if (name == TerminationReasonToString(r)) return r;
  }
  return InvalidArgument(
      StringPrintf("unknown termination \"%s\" in run_end event",
                   name.c_str()));
}

}  // namespace

StatusOr<ReplayResult> ReplayTrace(const std::vector<TraceEvent>& events) {
  ReplayResult result;
  result.num_events = events.size();
  ProgressReport& report = result.report;

  bool saw_begin = false;
  bool saw_end = false;
  for (const TraceEvent& ev : events) {
    switch (ev.kind) {
      case TraceEventKind::kRunBegin: {
        if (saw_begin) {
          return InvalidArgument(
              "trace contains more than one run_begin event; replay one run "
              "at a time");
        }
        saw_begin = true;
        report.names = SplitString(ev.name, ',');
        if (report.names.size() == 1 && report.names[0].empty()) {
          report.names.clear();
        }
        result.leaf_cardinality = ev.a;
        result.checkpoint_interval = static_cast<uint64_t>(ev.b);
        report.scanned_leaf_cardinality = ev.a;
        break;
      }
      case TraceEventKind::kCheckpoint: {
        Checkpoint cp;
        cp.work = ev.work;
        cp.work_lb = ev.a;
        cp.work_ub = ev.b;
        report.checkpoints.push_back(std::move(cp));
        break;
      }
      case TraceEventKind::kEstimatorEvaluated: {
        if (report.checkpoints.empty()) {
          return InvalidArgument(
              "estimator event before the first checkpoint event");
        }
        report.checkpoints.back().estimates.push_back(ev.a);
        break;
      }
      case TraceEventKind::kEtaSample: {
        if (report.checkpoints.empty()) {
          return InvalidArgument("eta event before the first checkpoint event");
        }
        // v4: the recorded band round-trips bit-identically (17 significant
        // digits), so replayed ETA triples equal the live checkpoint's.
        Checkpoint& cp = report.checkpoints.back();
        cp.eta_seconds = ev.a;
        cp.eta_lo_seconds = ev.b;
        cp.eta_hi_seconds = ev.c;
        break;
      }
      case TraceEventKind::kRunEnd: {
        saw_end = true;
        report.total_work = ev.work;
        report.root_rows = static_cast<uint64_t>(ev.a);
        StatusOr<TerminationReason> term = ParseTermination(ev.name);
        if (!term.ok()) return term.status();
        report.termination = term.value();
        if (report.completed()) {
          report.status = OkStatus();
          report.mu = ev.b;
        } else {
          report.status = Internal(ev.detail.empty()
                                       ? std::string("aborted (from trace)")
                                       : ev.detail);
        }
        break;
      }
      case TraceEventKind::kOperatorOpen:
      case TraceEventKind::kOperatorClose:
      case TraceEventKind::kBoundRefined:
      case TraceEventKind::kGuardTrip:
      case TraceEventKind::kFaultFired:
      case TraceEventKind::kSpillBegin:
      case TraceEventKind::kSpillEnd:
      case TraceEventKind::kIoRetry:
      case TraceEventKind::kExchangeBegin:
      case TraceEventKind::kExchangePartition:
        break;  // not needed to rebuild the report
    }
  }
  if (!report.checkpoints.empty()) {
    // Mirror the monitor: the report-level band is the last checkpoint's.
    const Checkpoint& last = report.checkpoints.back();
    report.eta_seconds = last.eta_seconds;
    report.eta_lo_seconds = last.eta_lo_seconds;
    report.eta_hi_seconds = last.eta_hi_seconds;
  }
  if (!saw_begin) {
    return InvalidArgument("trace has no run_begin event; nothing to replay");
  }
  if (!saw_end) {
    return InvalidArgument(
        "trace has no run_end event (recording was cut off); estimator "
        "metrics would be unscorable");
  }
  for (const Checkpoint& cp : report.checkpoints) {
    if (cp.estimates.size() != report.names.size()) {
      return InvalidArgument(StringPrintf(
          "checkpoint at work=%llu has %zu estimates for %zu estimators",
          static_cast<unsigned long long>(cp.work), cp.estimates.size(),
          report.names.size()));
    }
  }
  // Recompute true progress with the exact division the live monitor uses;
  // recorded work counters are integers, so this is bit-identical.
  if (report.completed()) {
    for (Checkpoint& c : report.checkpoints) {
      c.true_progress = report.total_work > 0
                            ? static_cast<double>(c.work) /
                                  static_cast<double>(report.total_work)
                            : 0;
    }
  }
  return result;
}

StatusOr<ReplayResult> ReplayTraceFile(const std::string& path) {
  StatusOr<std::vector<TraceEvent>> events = ReadTraceFile(path);
  if (!events.ok()) return events.status();
  return ReplayTrace(events.value());
}

ReevaluatedEstimates ReevaluateBoundEstimators(const ReplayResult& replay) {
  ReevaluatedEstimates out;
  out.names = {"pmax", "safe"};
  out.estimates.reserve(replay.report.checkpoints.size());
  for (const Checkpoint& cp : replay.report.checkpoints) {
    double curr = static_cast<double>(cp.work);
    double lb = cp.work_lb;
    double ub = cp.work_ub;
    double pmax = lb > 0 ? curr / lb : 0.0;
    double safe = (lb > 0 && ub > 0) ? curr / std::sqrt(lb * ub) : 0.0;
    out.estimates.push_back(
        {SanitizeEstimate(pmax), SanitizeEstimate(safe)});
  }
  return out;
}

}  // namespace qprog
