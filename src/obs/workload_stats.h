// Per-template workload statistics — the admission predictor's priors.
//
// LearnedWMP (PAPERS.md) shows a workload's memory demand is predictable
// from per-template features; this registry is the engine's minimal version
// of that idea: every monitored run records its template fingerprint
// (sql/fingerprint.h) together with the resource figures the engine already
// measures — peak buffered rows (the memory proxy), total work, spill work,
// result rows, wall time — and the admission controller (server/admission.h)
// reads the aggregate back as the prior for the next query of the same
// template.
//
// The registry is deliberately *below* core in the layer order (obs does not
// see ProgressReport); callers pass the plain figures. Thread-safe: sessions
// on different threads record concurrently, and the governor's admission
// path reads while runs record.

#ifndef QPROG_OBS_WORKLOAD_STATS_H_
#define QPROG_OBS_WORKLOAD_STATS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace qprog {

/// One finished (or aborted) run's resource figures.
struct WorkloadObservation {
  bool completed = false;
  uint64_t work = 0;
  uint64_t spill_work = 0;
  uint64_t peak_buffered_rows = 0;
  uint64_t root_rows = 0;
  uint64_t wall_ns = 0;
};

/// Aggregate over every observation of one template.
struct WorkloadStats {
  uint64_t runs = 0;           // observations recorded (completed + aborted)
  uint64_t completed_runs = 0;
  uint64_t total_work = 0;
  uint64_t total_spill_work = 0;
  uint64_t total_root_rows = 0;
  uint64_t total_wall_ns = 0;
  uint64_t total_peak_buffered_rows = 0;
  uint64_t max_peak_buffered_rows = 0;
  uint64_t max_work = 0;

  /// Mean peak buffered rows over all observations (0 with no runs).
  uint64_t MeanPeakBufferedRows() const {
    return runs > 0 ? total_peak_buffered_rows / runs : 0;
  }
  /// Mean wall time per run in nanoseconds (0 with no runs).
  uint64_t MeanWallNanos() const {
    return runs > 0 ? total_wall_ns / runs : 0;
  }
};

class WorkloadStatsRegistry {
 public:
  WorkloadStatsRegistry() = default;
  WorkloadStatsRegistry(const WorkloadStatsRegistry&) = delete;
  WorkloadStatsRegistry& operator=(const WorkloadStatsRegistry&) = delete;

  /// Folds one run's figures into the template's aggregate.
  void Record(uint64_t fingerprint, const WorkloadObservation& obs);

  /// Folds a whole precomputed aggregate into the template's entry — the
  /// restore path when priors are reloaded from the cross-run registry's
  /// crash-safe log (obs/cross_run_registry.h). Sums add, maxima max-merge;
  /// merging into a fresh registry reproduces the saved aggregates exactly.
  void Merge(uint64_t fingerprint, const WorkloadStats& stats);

  /// The aggregate for `fingerprint`; `found` (optional) reports whether any
  /// observation exists. An unseen template returns a zero aggregate.
  WorkloadStats Lookup(uint64_t fingerprint, bool* found = nullptr) const;

  /// Number of distinct templates observed.
  size_t num_templates() const;

  struct SnapshotEntry {
    uint64_t fingerprint = 0;
    WorkloadStats stats;
  };
  /// Every template's aggregate, sorted by fingerprint (deterministic order
  /// for reports and tests).
  std::vector<SnapshotEntry> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, WorkloadStats> by_template_;
};

}  // namespace qprog

#endif  // QPROG_OBS_WORKLOAD_STATS_H_
