#include "storage/csv.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "types/date.h"

namespace qprog {

namespace {

bool NeedsQuoting(const std::string& field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteField(const std::string& field, char delimiter) {
  if (!NeedsQuoting(field, delimiter)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string FieldOf(const Value& v) {
  if (v.is_null()) return "";
  return v.ToString();
}

StatusOr<Value> ParseField(const std::string& field, TypeId type,
                           const std::string& null_text, size_t line) {
  if (field.empty() || field == null_text) return Value::Null();
  switch (type) {
    case TypeId::kInt64: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return InvalidArgument(StringPrintf("line %zu: bad BIGINT '%s'", line,
                                            field.c_str()));
      }
      return Value::Int64(v);
    }
    case TypeId::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return InvalidArgument(StringPrintf("line %zu: bad DOUBLE '%s'", line,
                                            field.c_str()));
      }
      return Value::Double(v);
    }
    case TypeId::kDate: {
      auto days = ParseDate(field);
      if (!days.ok()) {
        return InvalidArgument(
            StringPrintf("line %zu: bad DATE '%s'", line, field.c_str()));
      }
      return Value::Date(days.value());
    }
    case TypeId::kBool: {
      std::string lower = ToLower(field);
      if (lower == "true" || lower == "1") return Value::Bool(true);
      if (lower == "false" || lower == "0") return Value::Bool(false);
      return InvalidArgument(
          StringPrintf("line %zu: bad BOOLEAN '%s'", line, field.c_str()));
    }
    case TypeId::kString:
    case TypeId::kNull:
      return Value::String(field);
  }
  return Internal("unhandled type");
}

}  // namespace

StatusOr<std::vector<std::string>> SplitCsvRecord(const std::string& line,
                                                  char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return InvalidArgument("quote in the middle of an unquoted field");
      }
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r' && i + 1 == line.size()) {
      // tolerate trailing CR
    } else {
      current += c;
    }
  }
  if (in_quotes) return InvalidArgument("unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Internal(StringPrintf("cannot open '%s' for writing", path.c_str()));
  }
  const Schema& schema = table.schema();
  if (options.has_header) {
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      if (c > 0) out << options.delimiter;
      out << QuoteField(schema.field(c).name, options.delimiter);
    }
    out << "\n";
  }
  for (uint64_t i = 0; i < table.num_rows(); ++i) {
    const Row& row = table.row(i);
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << options.delimiter;
      out << QuoteField(FieldOf(row[c]), options.delimiter);
    }
    out << "\n";
  }
  out.flush();
  if (!out.good()) {
    return Internal(StringPrintf("write to '%s' failed", path.c_str()));
  }
  return OkStatus();
}

StatusOr<Table> ReadCsv(const std::string& path, const std::string& name,
                        const Schema& schema, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return NotFound(StringPrintf("cannot open '%s'", path.c_str()));
  }
  Table table(name, schema);
  std::string line;
  size_t line_no = 0;
  bool skipped_header = !options.has_header;
  while (std::getline(in, line)) {
    ++line_no;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    if (line.empty()) continue;
    QPROG_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                           SplitCsvRecord(line, options.delimiter));
    if (fields.size() != schema.num_fields()) {
      return InvalidArgument(StringPrintf(
          "line %zu: expected %zu fields, found %zu", line_no,
          schema.num_fields(), fields.size()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      QPROG_ASSIGN_OR_RETURN(
          Value v, ParseField(fields[c], schema.field(c).type,
                              options.null_text, line_no));
      row.push_back(std::move(v));
    }
    table.AppendRow(std::move(row));
  }
  return table;
}

}  // namespace qprog
