#include "storage/registry_log.h"

#include <atomic>
#include <cerrno>
#include <cstring>

#include <sys/stat.h>
#include <unistd.h>

#include "common/macros.h"
#include "common/strings.h"
#include "storage/spill_file.h"  // SpillChecksum: the shared fnv1a32

namespace qprog {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 size + u32 checksum

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

/// Deterministic busy-wait, the spill-layer backoff idiom: no clocks, so a
/// retried schedule replays identically.
void BusyWait(uint64_t spins) {
  std::atomic<uint64_t> sink{0};
  for (uint64_t i = 0; i < spins; ++i) {
    sink.fetch_add(1, std::memory_order_relaxed);
  }
}

Status IoError(const char* op, const std::string& path) {
  return Internal(StringPrintf("registry log %s failed for '%s': %s", op,
                               path.c_str(), std::strerror(errno)));
}

/// fsync via the stdio handle's descriptor; flushes stdio buffers first.
Status FlushAndSync(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) return IoError("flush", path);
  if (::fsync(fileno(file)) != 0) return IoError("fsync", path);
  return OkStatus();
}

}  // namespace

void AppendRegistryFrame(const std::string& payload, std::string* out) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, SpillChecksum(payload.data(), payload.size()));
  out->append(payload);
}

RegistryLog::RegistryLog(std::string path, RegistryLogOptions options)
    : path_(std::move(path)), options_(std::move(options)) {}

RegistryLog::~RegistryLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status RegistryLog::ConsultFault(const char* site) {
  if (!options_.fault_hook) return OkStatus();
  uint64_t backoff = options_.retry.backoff_spins;
  int attempts = options_.retry.max_attempts < 1 ? 1 : options_.retry.max_attempts;
  Status last = OkStatus();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++io_retries_;
      BusyWait(backoff);
      backoff *= 2;
    }
    last = options_.fault_hook(site);
    if (last.ok()) return last;
    if (last.code() != StatusCode::kUnavailable) return last;  // permanent
  }
  return last;  // transient window outlasted the retry budget
}

StatusOr<std::unique_ptr<RegistryLog>> RegistryLog::Open(
    const std::string& path, RegistryLogOptions options,
    const std::function<void(const std::string& payload)>& visitor,
    RegistryRecoveryReport* recovery) {
  std::unique_ptr<RegistryLog> log(new RegistryLog(path, std::move(options)));
  QPROG_RETURN_IF_ERROR(log->ConsultFault(kRegistryOpenSite));

  RegistryRecoveryReport report;
  uint64_t good_end = 0;  // offset just past the last recoverable byte

  // Recovery scan: read the whole existing file (if any), walking the frame
  // chain. The file is read with plain stdio — recovery is not a hot path.
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in != nullptr) {
    std::string payload;
    uint64_t offset = 0;
    for (;;) {
      char header[kFrameHeaderBytes];
      size_t got = std::fread(header, 1, kFrameHeaderBytes, in);
      if (got < kFrameHeaderBytes) {
        // Fewer than 8 bytes left: clean EOF (got == 0) or a torn header.
        if (got > 0) {
          report.torn_tail_bytes += got;
          report.truncated = true;
        }
        break;
      }
      uint32_t size = 0, checksum = 0;
      std::memcpy(&size, header, 4);
      std::memcpy(&checksum, header + 4, 4);
      if (size > kRegistryMaxRecordBytes) {
        // Unframeable: the length itself is garbage, so there is no way to
        // find the next record boundary. Everything from here is dropped.
        std::fseek(in, 0, SEEK_END);
        uint64_t file_end = static_cast<uint64_t>(std::ftell(in));
        report.torn_tail_bytes += file_end - offset;
        report.truncated = true;
        break;
      }
      payload.resize(size);
      size_t payload_got =
          size > 0 ? std::fread(&payload[0], 1, size, in) : 0;
      if (payload_got < size) {
        // Torn payload at end of file.
        report.torn_tail_bytes += kFrameHeaderBytes + payload_got;
        report.truncated = true;
        break;
      }
      if (SpillChecksum(payload.data(), payload.size()) != checksum) {
        // Bit rot inside an intact frame: skip it, keep walking.
        ++report.corrupt_records_skipped;
        offset += kFrameHeaderBytes + size;
        good_end = offset;
        continue;
      }
      ++report.records_recovered;
      offset += kFrameHeaderBytes + size;
      good_end = offset;
      if (visitor) visitor(payload);
    }
    std::fclose(in);
  }

  // Repair: drop the torn tail so the append path continues from a clean
  // prefix. truncate(2) on the path — the read handle is already closed.
  if (report.truncated) {
    if (::truncate(path.c_str(), static_cast<off_t>(good_end)) != 0 &&
        errno != ENOENT) {
      return IoError("truncate", path);
    }
  }

  QPROG_RETURN_IF_ERROR(log->OpenForAppend(good_end));
  if (recovery != nullptr) *recovery = report;
  return log;
}

Status RegistryLog::OpenForAppend(uint64_t append_offset) {
  // "a+" creates if absent; positioning is explicit because appends must
  // land exactly at the recovered prefix end.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) return IoError("open", path_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  bytes_ = append_offset;
  return OkStatus();
}

Status RegistryLog::Append(const std::string& payload) {
  if (file_ == nullptr) return Internal("registry log is not open");
  if (payload.size() > kRegistryMaxRecordBytes) {
    return InvalidArgument(
        StringPrintf("registry record of %zu bytes exceeds the %u-byte limit",
                     payload.size(), kRegistryMaxRecordBytes));
  }
  Status fault = ConsultFault(kRegistryAppendSite);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendRegistryFrame(payload, &frame);
  bool wrote_ok = false;
  if (fault.ok()) {
    wrote_ok = std::fwrite(frame.data(), 1, frame.size(), file_) == frame.size();
    if (!wrote_ok) fault = IoError("append", path_);
  }
  if (!fault.ok()) {
    // Roll back any partial bytes: flush what stdio buffered, then cut the
    // file back to the pre-append size. A permanent fault must leave no
    // partial state for the next Open() to repair.
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
    if (::truncate(path_.c_str(), static_cast<off_t>(bytes_)) != 0 &&
        errno != ENOENT) {
      return IoError("rollback-truncate", path_);
    }
    Status reopen = OpenForAppend(bytes_);
    if (!reopen.ok()) return reopen;
    return fault;
  }
  bytes_ += frame.size();
  ++records_appended_;
  if (options_.sync_each_append) return Sync();
  return OkStatus();
}

Status RegistryLog::Sync() {
  if (file_ == nullptr) return Internal("registry log is not open");
  return FlushAndSync(file_, path_);
}

Status RegistryLog::Compact(const std::vector<std::string>& records) {
  Status fault = ConsultFault(kRegistryCompactSite);
  if (!fault.ok()) return fault;

  const std::string tmp_path = path_ + ".compact.tmp";
  std::FILE* tmp = std::fopen(tmp_path.c_str(), "wb");
  if (tmp == nullptr) return IoError("compact-open", tmp_path);
  std::string frame;
  uint64_t written = 0;
  for (const std::string& payload : records) {
    if (payload.size() > kRegistryMaxRecordBytes) {
      std::fclose(tmp);
      std::remove(tmp_path.c_str());
      return InvalidArgument("registry compact record exceeds the size limit");
    }
    frame.clear();
    AppendRegistryFrame(payload, &frame);
    if (std::fwrite(frame.data(), 1, frame.size(), tmp) != frame.size()) {
      std::fclose(tmp);
      std::remove(tmp_path.c_str());
      return IoError("compact-write", tmp_path);
    }
    written += frame.size();
  }
  Status sync = FlushAndSync(tmp, tmp_path);
  std::fclose(tmp);
  if (!sync.ok()) {
    std::remove(tmp_path.c_str());
    return sync;
  }
  // Atomic publish: after rename either the whole new log is visible or the
  // old one still is — a crash in between cannot mix the two.
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    Status err = IoError("compact-rename", path_);
    std::remove(tmp_path.c_str());
    Status reopen = OpenForAppend(bytes_);
    return reopen.ok() ? err : reopen;
  }
  records_appended_ = records.size();
  return OpenForAppend(written);
}

}  // namespace qprog
