// SpillCodec: a from-scratch LZ4-style block compressor for spill runs.
//
// Spill runs are written and re-read in bulk, so the codec is tuned for
// throughput, not ratio: a greedy byte-oriented scheme that finds matches
// through a 4-byte-sequence hash table and emits (literal run, match) token
// pairs — the classic LZ4 shape, implemented independently here.
//
// Compressed stream format (little-endian, byte-oriented):
//
//   token := [1 byte: literal_len (high nibble) | match_len - kMinMatch (low)]
//            [literal_len extension bytes, 255-terminated, if nibble == 15]
//            [literal bytes]
//            [2 bytes: match offset, 1..65535]          (absent in final token)
//            [match_len extension bytes, if nibble == 15]
//
// The final token of a block carries literals only (no offset/match), which
// is how the decoder recognizes the end. Inputs that do not compress are
// handled a level up: SpillFile stores such blocks raw (see spill_file.h
// framing), so CompressBlock never needs to expand its input by more than
// the bound below.
//
// The decoder is defensive: any malformed byte (offset past the window,
// lengths overrunning the declared raw size) fails with kInternal rather
// than reading out of bounds — a corrupt spill block must surface as a clean
// error, never UB.

#ifndef QPROG_STORAGE_SPILL_CODEC_H_
#define QPROG_STORAGE_SPILL_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace qprog {

/// Smallest match worth encoding (below this a literal run is cheaper).
inline constexpr size_t kSpillCodecMinMatch = 4;

/// Worst-case compressed size for `raw_size` input bytes (all literals plus
/// token/extension overhead). Callers that cap output at this bound can pass
/// any input.
size_t SpillCompressBound(size_t raw_size);

/// Compresses `size` bytes at `data`, appending the stream onto `*out`.
/// Returns the number of bytes appended. The result is only worth keeping
/// when it is smaller than `size` — otherwise store the block raw.
size_t SpillCompressBlock(const void* data, size_t size, std::string* out);

/// Decompresses a stream produced by SpillCompressBlock, appending exactly
/// `raw_size` bytes onto `*out`. Fails with kInternal on any malformed
/// input, including a stream that decodes to the wrong length.
Status SpillDecompressBlock(const void* data, size_t size, size_t raw_size,
                            std::string* out);

}  // namespace qprog

#endif  // QPROG_STORAGE_SPILL_CODEC_H_
