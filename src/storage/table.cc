#include "storage/table.h"

#include <algorithm>

#include "common/macros.h"

namespace qprog {

void Table::AppendRow(Row row) {
  QPROG_CHECK_MSG(row.size() == schema_.num_fields(),
                  "row arity %zu != schema arity %zu in table %s", row.size(),
                  schema_.num_fields(), name_.c_str());
  rows_.push_back(std::move(row));
}

void Table::Reorder(const std::vector<size_t>& perm) {
  QPROG_CHECK(perm.size() == rows_.size());
  std::vector<Row> reordered;
  reordered.reserve(rows_.size());
  for (size_t src : perm) {
    QPROG_CHECK(src < rows_.size());
    reordered.push_back(std::move(rows_[src]));
  }
  rows_ = std::move(reordered);
}

void Table::SortByColumn(size_t col) {
  QPROG_CHECK(col < schema_.num_fields());
  std::stable_sort(rows_.begin(), rows_.end(), [col](const Row& a, const Row& b) {
    if (a[col].is_null()) return !b[col].is_null();
    if (b[col].is_null()) return false;
    return a[col].Compare(b[col]) < 0;
  });
}

}  // namespace qprog
