#include "storage/catalog.h"

#include "common/strings.h"
#include "index/ordered_index.h"
#include "stats/table_stats.h"

namespace qprog {

namespace {
std::string IndexName(const std::string& table, const std::string& column) {
  return table + "." + column;
}
}  // namespace

Database::Database() = default;
Database::~Database() = default;
Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;

StatusOr<Table*> Database::CreateTable(std::string name, Schema schema) {
  if (tables_.count(name) > 0) {
    return AlreadyExists(StringPrintf("table '%s' already exists", name.c_str()));
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* raw = table.get();
  tables_[std::move(name)] = std::move(table);
  return raw;
}

StatusOr<Table*> Database::AddTable(Table table) {
  std::string name = table.name();
  if (tables_.count(name) > 0) {
    return AlreadyExists(StringPrintf("table '%s' already exists", name.c_str()));
  }
  auto owned = std::make_unique<Table>(std::move(table));
  Table* raw = owned.get();
  tables_[std::move(name)] = std::move(owned);
  return raw;
}

Status Database::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFound(StringPrintf("table '%s' not found", name.c_str()));
  }
  // Remove dependent indexes.
  for (auto idx = indexes_.begin(); idx != indexes_.end();) {
    if (StartsWith(idx->first, name + ".")) {
      idx = indexes_.erase(idx);
    } else {
      ++idx;
    }
  }
  stats_.erase(name);
  tables_.erase(it);
  return OkStatus();
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

StatusOr<const OrderedIndex*> Database::BuildOrderedIndex(
    const std::string& table, const std::string& column) {
  Table* t = GetTable(table);
  if (t == nullptr) {
    return NotFound(StringPrintf("table '%s' not found", table.c_str()));
  }
  int col = t->schema().FindField(column);
  if (col < 0) {
    return NotFound(StringPrintf("column '%s' not found in table '%s'",
                                 column.c_str(), table.c_str()));
  }
  auto index = std::make_unique<OrderedIndex>(t, static_cast<size_t>(col));
  const OrderedIndex* raw = index.get();
  indexes_[IndexName(table, column)] = std::move(index);
  return raw;
}

const OrderedIndex* Database::GetOrderedIndex(const std::string& table,
                                              const std::string& column) const {
  auto it = indexes_.find(IndexName(table, column));
  return it == indexes_.end() ? nullptr : it->second.get();
}

void Database::SetStats(const std::string& table,
                        std::unique_ptr<TableStats> stats) {
  stats_[table] = std::move(stats);
}

const TableStats* Database::GetStats(const std::string& table) const {
  auto it = stats_.find(table);
  return it == stats_.end() ? nullptr : it->second.get();
}

}  // namespace qprog
