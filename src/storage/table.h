// Table: an in-memory row store. The workloads in this project are read-only
// after bulk load, so the table is append-only and supports reordering its
// rows (the paper's experiments depend critically on physical tuple order —
// skew-first, skew-last, random — see Sections 4 and 5).

#ifndef QPROG_STORAGE_TABLE_H_
#define QPROG_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/value.h"

namespace qprog {

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return rows_.size(); }

  /// Appends a row. Aborts if the arity does not match the schema (type
  /// checking is the loader's job; NULLs are always admissible).
  void AppendRow(Row row);

  /// Reserves capacity for bulk loads.
  void Reserve(uint64_t n) { rows_.reserve(n); }

  const Row& row(uint64_t i) const { return rows_[i]; }
  Row* mutable_row(uint64_t i) { return &rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Value of column `col` in row `i`.
  const Value& at(uint64_t i, size_t col) const { return rows_[i][col]; }

  /// Physically reorders the rows so that row i of the new table is
  /// `perm[i]` of the old one. `perm` must be a permutation of [0, n).
  void Reorder(const std::vector<size_t>& perm);

  /// Stable-sorts rows by ascending values in `col` (used to lay data out in
  /// "natural" clustered order, and by merge-join test fixtures).
  void SortByColumn(size_t col);

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace qprog

#endif  // QPROG_STORAGE_TABLE_H_
