#include "storage/spill_codec.h"

#include <cstring>

namespace qprog {

namespace {

// 4-byte-sequence hash for the match table. Multiplicative hash over the
// little-endian u32 at `p`; the shift keeps the top kHashBits bits.
constexpr int kHashBits = 13;
constexpr size_t kHashSize = size_t{1} << kHashBits;
constexpr size_t kMaxOffset = 65535;

inline uint32_t Load32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t Hash4(const unsigned char* p) {
  return (Load32(p) * 2654435761u) >> (32 - kHashBits);
}

void PutLength(std::string* out, size_t len) {
  // Nibble extension: 255-valued bytes, then the remainder byte.
  while (len >= 255) {
    out->push_back(static_cast<char>(0xFF));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

}  // namespace

size_t SpillCompressBound(size_t raw_size) {
  // One token byte per 15 literals plus extension bytes: raw + raw/255 + 16
  // comfortably covers the all-literal worst case.
  return raw_size + raw_size / 255 + 16;
}

size_t SpillCompressBlock(const void* data, size_t size, std::string* out) {
  const auto* src = static_cast<const unsigned char*>(data);
  const size_t start = out->size();
  uint32_t table[kHashSize];  // positions + 1; 0 = empty
  std::memset(table, 0, sizeof(table));

  size_t pos = 0;      // current scan position
  size_t lit_start = 0;  // first literal not yet emitted
  // Matches need kMinMatch bytes plus room to load 4 bytes at the candidate.
  const size_t match_limit = size >= kSpillCodecMinMatch + 4
                                 ? size - (kSpillCodecMinMatch + 4)
                                 : 0;
  while (pos < match_limit) {
    uint32_t h = Hash4(src + pos);
    size_t cand = table[h];
    table[h] = static_cast<uint32_t>(pos + 1);
    if (cand == 0) {
      ++pos;
      continue;
    }
    --cand;  // stored +1
    if (pos - cand > kMaxOffset || Load32(src + cand) != Load32(src + pos)) {
      ++pos;
      continue;
    }
    // Extend the match as far as it goes (may overlap pos: offset < length
    // encodes a byte-repeat, same as LZ4).
    size_t match_len = 4;
    while (pos + match_len < size && src[cand + match_len] == src[pos + match_len]) {
      ++match_len;
    }
    size_t lit_len = pos - lit_start;
    size_t token_match = match_len - kSpillCodecMinMatch;
    unsigned char token =
        static_cast<unsigned char>((lit_len < 15 ? lit_len : 15) << 4) |
        static_cast<unsigned char>(token_match < 15 ? token_match : 15);
    out->push_back(static_cast<char>(token));
    if (lit_len >= 15) PutLength(out, lit_len - 15);
    out->append(reinterpret_cast<const char*>(src + lit_start), lit_len);
    size_t offset = pos - cand;
    out->push_back(static_cast<char>(offset & 0xFF));
    out->push_back(static_cast<char>((offset >> 8) & 0xFF));
    if (token_match >= 15) PutLength(out, token_match - 15);
    pos += match_len;
    lit_start = pos;
  }
  // Final token: the remaining literals, no match.
  size_t lit_len = size - lit_start;
  unsigned char token =
      static_cast<unsigned char>((lit_len < 15 ? lit_len : 15) << 4);
  out->push_back(static_cast<char>(token));
  if (lit_len >= 15) PutLength(out, lit_len - 15);
  out->append(reinterpret_cast<const char*>(src + lit_start), lit_len);
  return out->size() - start;
}

namespace {

bool GetLength(const unsigned char*& p, const unsigned char* end, size_t* len) {
  for (;;) {
    if (p >= end) return false;
    unsigned char b = *p++;
    *len += b;
    if (b != 255) return true;
  }
}

}  // namespace

Status SpillDecompressBlock(const void* data, size_t size, size_t raw_size,
                            std::string* out) {
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + size;
  const size_t start = out->size();
  out->reserve(start + raw_size);
  for (;;) {
    if (p >= end) return Internal("spill codec: truncated token");
    unsigned char token = *p++;
    size_t lit_len = token >> 4;
    if (lit_len == 15 && !GetLength(p, end, &lit_len)) {
      return Internal("spill codec: truncated literal length");
    }
    if (static_cast<size_t>(end - p) < lit_len) {
      return Internal("spill codec: truncated literals");
    }
    if (out->size() - start + lit_len > raw_size) {
      return Internal("spill codec: output overruns declared size");
    }
    out->append(reinterpret_cast<const char*>(p), lit_len);
    p += lit_len;
    if (p == end) break;  // final token carries literals only
    if (end - p < 2) return Internal("spill codec: truncated match offset");
    size_t offset = static_cast<size_t>(p[0]) | (static_cast<size_t>(p[1]) << 8);
    p += 2;
    size_t match_len = (token & 0x0F);
    if (match_len == 15 && !GetLength(p, end, &match_len)) {
      return Internal("spill codec: truncated match length");
    }
    match_len += kSpillCodecMinMatch;
    size_t produced = out->size() - start;
    if (offset == 0 || offset > produced) {
      return Internal("spill codec: match offset out of window");
    }
    if (produced + match_len > raw_size) {
      return Internal("spill codec: match overruns declared size");
    }
    // Byte-by-byte copy: offset < match_len overlaps deliberately (RLE).
    size_t from = out->size() - offset;
    for (size_t i = 0; i < match_len; ++i) out->push_back((*out)[from + i]);
  }
  if (out->size() - start != raw_size) {
    return Internal("spill codec: stream decodes to the wrong length");
  }
  return OkStatus();
}

}  // namespace qprog
