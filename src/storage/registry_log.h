// RegistryLog: the crash-safe storage substrate of the cross-run estimator
// registry (obs/cross_run_registry.h). An append-only file of length-
// prefixed, checksummed records — the same [u32 size][u32 fnv1a32][payload]
// framing SpillFile uses for spill runs — that survives kill-9, torn writes,
// and bit rot:
//
//  * Torn tail: a record whose header or payload runs past end-of-file is
//    the half-written victim of a crash. Open() truncates the file back to
//    the last fully-written record, so the next append continues from a
//    clean prefix.
//  * Corrupt record: a record whose length header is intact but whose
//    payload fails the checksum (bit rot, partially-synced page) is skipped
//    — the length framing still locates the next record — and reported in
//    the RegistryRecoveryReport. Skipped bytes stay in the file until the
//    next Compact() rewrites it.
//  * Unframeable garbage: a length header that is itself corrupt (larger
//    than kMaxRecordBytes) leaves no way to resynchronize; everything from
//    that offset on is truncated like a torn tail.
//
// Compact() rewrites the log as a fresh file beside the original and
// publishes it with an atomic rename(2), so a crash during compaction
// leaves either the old log or the new one — never a mix.
//
// Fault injection: every open / append / sync / compact consults an
// optional fault hook (the exec-layer FaultInjector bound by the caller;
// storage cannot link exec) at the registry.open / registry.append /
// registry.compact sites. kUnavailable verdicts are transient and retried
// with the same deterministic doubling busy-wait backoff as spill I/O;
// anything else is permanent and surfaces as a clean error with no partial
// state — a failed append truncates the file back to its pre-append size.

#ifndef QPROG_STORAGE_REGISTRY_LOG_H_
#define QPROG_STORAGE_REGISTRY_LOG_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace qprog {

/// Fault-site names consulted through RegistryLogOptions::fault_hook. These
/// mirror the exec-layer faults::kRegistry* constants; the duplication keeps
/// storage below exec in the layer order.
inline constexpr char kRegistryOpenSite[] = "registry.open";
inline constexpr char kRegistryAppendSite[] = "registry.append";
inline constexpr char kRegistryCompactSite[] = "registry.compact";

/// Retry behavior for transient registry I/O failures — the registry-side
/// twin of SpillRetryPolicy (exec/spill.h), redeclared here because storage
/// sits below exec.
struct RegistryRetryPolicy {
  /// Total tries per operation (first attempt + up to max_attempts-1
  /// retries). Must be >= 1.
  int max_attempts = 4;
  /// Busy-wait spins before the first retry; doubles per retry.
  /// Deterministic (no clock), like spill backoff.
  uint64_t backoff_spins = 512;
};

struct RegistryLogOptions {
  /// Consulted before every real file operation with the site name
  /// (kRegistry*Site). A kUnavailable return is transient (retried per
  /// `retry`); any other non-OK return is permanent and surfaces after the
  /// operation's state is rolled back. Null = no faults.
  std::function<Status(const char* site)> fault_hook;
  RegistryRetryPolicy retry;
  /// fsync after every Append. Slower but crash-safe per record; off, the
  /// caller chooses when to Sync() (e.g. once per recorded run).
  bool sync_each_append = false;
};

/// What Open() found and repaired.
struct RegistryRecoveryReport {
  uint64_t records_recovered = 0;
  /// Checksum-failed records skipped over intact length framing.
  uint64_t corrupt_records_skipped = 0;
  /// Bytes cut off the end (torn tail or unframeable garbage).
  uint64_t torn_tail_bytes = 0;
  bool truncated = false;
};

/// Maximum payload size Open() will believe. A length header above this is
/// treated as unframeable corruption, not an allocation request — the PR 3
/// SpillFile::ReadRecord hardening, applied at recovery time.
inline constexpr uint32_t kRegistryMaxRecordBytes = 16u * 1024 * 1024;

class RegistryLog {
 public:
  /// Opens (creating if absent) the log at `path`, replays every recoverable
  /// record through `visitor` (may be null), repairs the tail, and leaves
  /// the file positioned for appending. `recovery` (optional) reports what
  /// was recovered, skipped, and truncated.
  static StatusOr<std::unique_ptr<RegistryLog>> Open(
      const std::string& path, RegistryLogOptions options = RegistryLogOptions(),
      const std::function<void(const std::string& payload)>& visitor = nullptr,
      RegistryRecoveryReport* recovery = nullptr);

  ~RegistryLog();

  RegistryLog(const RegistryLog&) = delete;
  RegistryLog& operator=(const RegistryLog&) = delete;

  /// Appends one record. On any failure (after transient retries) the file
  /// is truncated back to its pre-append size, so a permanent fault never
  /// leaves a partial record for the next Open() to trip over.
  Status Append(const std::string& payload);

  /// Flushes and fsyncs everything appended so far. After an OK Sync every
  /// prior Append survives kill-9.
  Status Sync();

  /// Atomically replaces the log's contents with `records`: writes them to
  /// a sibling temp file, fsyncs, and rename(2)s it over the log. On any
  /// failure the original log is untouched (the temp file is removed).
  Status Compact(const std::vector<std::string>& records);

  const std::string& path() const { return path_; }
  uint64_t records_appended() const { return records_appended_; }
  /// Current on-disk size in bytes (framing included).
  uint64_t bytes() const { return bytes_; }
  /// Transient-fault retries performed across all operations.
  uint64_t io_retries() const { return io_retries_; }

 private:
  RegistryLog(std::string path, RegistryLogOptions options);

  /// Consults the fault hook at `site`, retrying transient verdicts with
  /// doubling busy-wait backoff. Returns the first permanent failure, or OK.
  Status ConsultFault(const char* site);
  Status OpenForAppend(uint64_t append_offset);

  std::string path_;
  RegistryLogOptions options_;
  std::FILE* file_ = nullptr;
  uint64_t bytes_ = 0;
  uint64_t records_appended_ = 0;
  uint64_t io_retries_ = 0;
};

/// Serializes one record frame ([u32 size][u32 fnv1a32][payload]) onto
/// `out` — shared by Append and Compact, and by tests that hand-craft
/// corrupt logs.
void AppendRegistryFrame(const std::string& payload, std::string* out);

}  // namespace qprog

#endif  // QPROG_STORAGE_REGISTRY_LOG_H_
