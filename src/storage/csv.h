// CSV import/export for tables — the bulk-load path a downstream user needs
// to bring their own data into the engine. RFC-4180-style quoting; values
// are parsed according to the target schema's column types.

#ifndef QPROG_STORAGE_CSV_H_
#define QPROG_STORAGE_CSV_H_

#include <string>

#include "common/statusor.h"
#include "storage/table.h"

namespace qprog {

struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Text representing SQL NULL (in addition to a fully empty field).
  std::string null_text = "";
};

/// Writes `table` to `path` (header row from the schema, then data rows).
Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options = {});

/// Reads `path` into a new table with the given name and schema. Each field
/// is parsed according to the schema type (BIGINT, DOUBLE, DATE as
/// YYYY-MM-DD, BOOLEAN as true/false, VARCHAR verbatim); an empty or
/// null_text field becomes NULL. Fails with InvalidArgument on arity or
/// parse errors (reporting the line number).
StatusOr<Table> ReadCsv(const std::string& path, const std::string& name,
                        const Schema& schema, const CsvOptions& options = {});

/// Parses one CSV record (without trailing newline) into raw fields,
/// honoring quotes. Exposed for tests.
StatusOr<std::vector<std::string>> SplitCsvRecord(const std::string& line,
                                                  char delimiter);

}  // namespace qprog

#endif  // QPROG_STORAGE_CSV_H_
