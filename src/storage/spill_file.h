// SpillFile: the storage substrate of the memory-adaptive execution layer
// (exec/spill.h). A write-then-read temp file holding length-prefixed,
// checksummed records; created under a spill directory and deleted on
// destruction, so a run can never leak past its owner.
//
// The record format is deliberately simple and self-verifying:
//
//   [u32 payload_size][u32 fnv1a32(payload)][payload bytes]
//
// A checksum mismatch on read is data corruption — a *permanent* failure
// (kInternal), never retried. Transient failures (kUnavailable) are only ever
// produced by the fault injector upstream of the file; a short read/write
// from the OS is likewise permanent from this layer's point of view.
//
// Row serialization lives here too (storage already links qprog_types): a
// tagged per-value encoding covering every TypeId the engine's Value carries.

#ifndef QPROG_STORAGE_SPILL_FILE_H_
#define QPROG_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/statusor.h"
#include "types/value.h"

namespace qprog {

/// 32-bit FNV-1a over a byte buffer — cheap, deterministic, and good enough
/// to catch torn spill records.
uint32_t SpillChecksum(const void* data, size_t size);

/// Serializes `row` onto `out` (appends; does not clear).
void AppendRowBytes(const Row& row, std::string* out);

/// Parses a buffer produced by AppendRowBytes. Fails with kInternal on any
/// malformed byte — a failed parse after a passing checksum means a bug, not
/// bit rot, but the caller treats both as permanent spill corruption.
Status ParseRowBytes(const std::string& bytes, Row* out);

class SpillFile {
 public:
  /// Creates a fresh spill file under `dir` (empty = $TMPDIR, else /tmp).
  /// File names carry the kFilePrefix so tests can audit a directory for
  /// leaked spill files.
  static StatusOr<std::unique_ptr<SpillFile>> Create(const std::string& dir);

  static constexpr const char* kFilePrefix = "qprog-spill-";

  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends one checksummed record. Write phase only.
  Status AppendRecord(const void* data, size_t size);

  /// Flushes buffered writes and rewinds to the first record for reading.
  /// May be called again to re-read from the start.
  Status SeekToStart();

  /// Reads the next record into `*out`. Returns false at end of file; a
  /// checksum mismatch or torn record is a kInternal error.
  StatusOr<bool> ReadRecord(std::string* out);

  /// Closes and deletes the backing file. Idempotent; also runs at
  /// destruction, so a SpillFile can never outlive its temp file.
  void CloseAndDelete();

  uint64_t records_written() const { return records_written_; }
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  SpillFile(std::FILE* file, std::string path);

  std::FILE* file_;
  std::string path_;
  uint64_t records_written_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace qprog

#endif  // QPROG_STORAGE_SPILL_FILE_H_
