// SpillFile: the storage substrate of the memory-adaptive execution layer
// (exec/spill.h). A write-then-read temp file holding length-prefixed,
// checksummed records; created under a spill directory and deleted on
// destruction, so a run can never leak past its owner.
//
// Two on-disk framings, selected at Create time:
//
//  * Record framing (default):   [u32 payload_size][u32 fnv1a32(payload)][payload]
//  * Block framing (compressed): records are packed as [u32 size][payload]
//    into blocks of ~options.block_bytes, each block written as
//
//      [u32 raw_size][u32 stored_size][u32 fnv1a32(stored bytes)][stored bytes]
//
//    where the stored bytes are the SpillCompressBlock stream when it is
//    smaller than the raw block, and the raw block itself otherwise
//    (stored_size == raw_size marks a stored-raw block, so incompressible
//    data costs 12 bytes of framing and nothing else).
//
// A checksum mismatch on read is data corruption — a *permanent* failure
// (kInternal), never retried. Transient failures (kUnavailable) are only ever
// produced by the fault injector upstream of the file; a short read/write
// from the OS is likewise permanent from this layer's point of view.
//
// Row serialization lives here too (storage already links qprog_types): a
// tagged per-value encoding covering every TypeId the engine's Value carries.

#ifndef QPROG_STORAGE_SPILL_FILE_H_
#define QPROG_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/statusor.h"
#include "types/value.h"

namespace qprog {

/// 32-bit FNV-1a over a byte buffer — cheap, deterministic, and good enough
/// to catch torn spill records.
uint32_t SpillChecksum(const void* data, size_t size);

/// Serializes `row` onto `out` (appends; does not clear).
void AppendRowBytes(const Row& row, std::string* out);

/// Parses a buffer produced by AppendRowBytes. Fails with kInternal on any
/// malformed byte — a failed parse after a passing checksum means a bug, not
/// bit rot, but the caller treats both as permanent spill corruption.
Status ParseRowBytes(const std::string& bytes, Row* out);

/// Framing/codec selection for one spill file.
struct SpillFileOptions {
  /// Compress with the block codec (storage/spill_codec.h). When false the
  /// original per-record framing is used and `block_bytes` is ignored.
  bool compress = false;
  /// Target uncompressed block size. A single record larger than this still
  /// works — it becomes one oversized block.
  size_t block_bytes = 64 * 1024;
};

class SpillFile {
 public:
  /// Creates a fresh spill file under `dir` (empty = $TMPDIR, else /tmp).
  /// File names carry the kFilePrefix so tests can audit a directory for
  /// leaked spill files.
  static StatusOr<std::unique_ptr<SpillFile>> Create(
      const std::string& dir, SpillFileOptions options = SpillFileOptions());

  static constexpr const char* kFilePrefix = "qprog-spill-";

  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends one record. Write phase only. In block mode the record is
  /// buffered until the current block fills.
  Status AppendRecord(const void* data, size_t size);

  /// Ends the write phase: in block mode, flushes the final partial block so
  /// bytes_written() is the file's true on-disk size. Idempotent; implied by
  /// SeekToStart for callers that skip it.
  Status Seal();

  /// Flushes buffered writes and rewinds to the first record for reading.
  /// May be called again to re-read from the start.
  Status SeekToStart();

  /// Reads the next record into `*out`. Returns false at end of file; a
  /// checksum mismatch, torn record or corrupt compressed block is a
  /// kInternal error.
  StatusOr<bool> ReadRecord(std::string* out);

  /// Closes and deletes the backing file. Idempotent; also runs at
  /// destruction, so a SpillFile can never outlive its temp file.
  void CloseAndDelete();

  uint64_t records_written() const { return records_written_; }
  /// Bytes physically written to disk (framing included). With compression
  /// this is what the device saw, not the raw record payload.
  uint64_t bytes_written() const { return bytes_written_; }
  /// Raw record bytes accepted by AppendRecord (payload + record headers),
  /// before compression — the denominator of the compression ratio.
  uint64_t raw_bytes_written() const { return raw_bytes_written_; }
  /// Bytes physically read from disk so far (framing included).
  uint64_t bytes_read() const { return bytes_read_; }
  const std::string& path() const { return path_; }
  bool compressed() const { return options_.compress; }

 private:
  SpillFile(std::FILE* file, std::string path, SpillFileOptions options);

  Status FlushBlock();
  /// Loads and verifies the next block into block_; false at end of file.
  StatusOr<bool> ReadBlock();

  std::FILE* file_;
  std::string path_;
  SpillFileOptions options_;
  uint64_t records_written_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t raw_bytes_written_ = 0;
  uint64_t bytes_read_ = 0;
  bool sealed_ = false;

  // Block-mode state: the current uncompressed block (outgoing while
  // writing, decoded while reading) plus the read cursor into it.
  std::string block_;
  size_t block_cursor_ = 0;
  std::string scratch_;  // compressed bytes, reused across blocks
};

}  // namespace qprog

#endif  // QPROG_STORAGE_SPILL_FILE_H_
