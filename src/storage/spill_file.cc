#include "storage/spill_file.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"
#include "storage/spill_codec.h"

#if defined(_WIN32)
#include <process.h>
#define QPROG_GETPID _getpid
#else
#include <unistd.h>
#define QPROG_GETPID getpid
#endif

namespace qprog {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

bool ReadU32(const char* p, const char* end, uint32_t* v, const char** next) {
  if (end - p < 4) return false;
  std::memcpy(v, p, 4);
  *next = p + 4;
  return true;
}

std::string DefaultSpillDir() {
  const char* tmp = std::getenv("TMPDIR");
  return (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
}

}  // namespace

uint32_t SpillChecksum(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 16777619u;
  }
  return h;
}

void AppendRowBytes(const Row& row, std::string* out) {
  AppendU32(out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) {
    out->push_back(static_cast<char>(v.type()));
    switch (v.type()) {
      case TypeId::kNull:
        break;
      case TypeId::kBool:
        out->push_back(v.bool_value() ? 1 : 0);
        break;
      case TypeId::kInt64: {
        int64_t x = v.int64_value();
        char buf[8];
        std::memcpy(buf, &x, 8);
        out->append(buf, 8);
        break;
      }
      case TypeId::kDouble: {
        double x = v.double_value();
        char buf[8];
        std::memcpy(buf, &x, 8);
        out->append(buf, 8);
        break;
      }
      case TypeId::kDate: {
        int32_t x = v.date_value();
        char buf[4];
        std::memcpy(buf, &x, 4);
        out->append(buf, 4);
        break;
      }
      case TypeId::kString: {
        const std::string& s = v.string_value();
        AppendU32(out, static_cast<uint32_t>(s.size()));
        out->append(s);
        break;
      }
    }
  }
}

Status ParseRowBytes(const std::string& bytes, Row* out) {
  const char* p = bytes.data();
  const char* end = p + bytes.size();
  uint32_t nfields = 0;
  if (!ReadU32(p, end, &nfields, &p)) {
    return Internal("spill row: truncated field count");
  }
  out->clear();
  out->reserve(nfields);
  for (uint32_t i = 0; i < nfields; ++i) {
    if (p >= end) return Internal("spill row: truncated type tag");
    auto tag = static_cast<TypeId>(static_cast<unsigned char>(*p++));
    switch (tag) {
      case TypeId::kNull:
        out->push_back(Value::Null());
        break;
      case TypeId::kBool:
        if (p >= end) return Internal("spill row: truncated bool");
        out->push_back(Value::Bool(*p++ != 0));
        break;
      case TypeId::kInt64: {
        if (end - p < 8) return Internal("spill row: truncated int64");
        int64_t x;
        std::memcpy(&x, p, 8);
        p += 8;
        out->push_back(Value::Int64(x));
        break;
      }
      case TypeId::kDouble: {
        if (end - p < 8) return Internal("spill row: truncated double");
        double x;
        std::memcpy(&x, p, 8);
        p += 8;
        out->push_back(Value::Double(x));
        break;
      }
      case TypeId::kDate: {
        if (end - p < 4) return Internal("spill row: truncated date");
        int32_t x;
        std::memcpy(&x, p, 4);
        p += 4;
        out->push_back(Value::Date(x));
        break;
      }
      case TypeId::kString: {
        uint32_t len = 0;
        if (!ReadU32(p, end, &len, &p) || end - p < len) {
          return Internal("spill row: truncated string");
        }
        out->push_back(Value::String(std::string(p, len)));
        p += len;
        break;
      }
      default:
        return Internal(StringPrintf("spill row: unknown type tag %d",
                                     static_cast<int>(tag)));
    }
  }
  if (p != end) return Internal("spill row: trailing bytes");
  return OkStatus();
}

// --------------------------------------------------------------------------
// SpillFile

SpillFile::SpillFile(std::FILE* file, std::string path,
                     SpillFileOptions options)
    : file_(file), path_(std::move(path)), options_(options) {}

SpillFile::~SpillFile() { CloseAndDelete(); }

StatusOr<std::unique_ptr<SpillFile>> SpillFile::Create(
    const std::string& dir, SpillFileOptions options) {
  static std::atomic<uint64_t> counter{0};
  const std::string base = dir.empty() ? DefaultSpillDir() : dir;
  if (options.block_bytes == 0) options.block_bytes = 1;
  // The pid+counter name is unique within a process; the "x" (exclusive)
  // mode turns a cross-process collision into a clean retry.
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::string path = StringPrintf(
        "%s/%s%d-%llu.tmp", base.c_str(), kFilePrefix,
        static_cast<int>(QPROG_GETPID()),
        static_cast<unsigned long long>(
            counter.fetch_add(1, std::memory_order_relaxed)));
    std::FILE* file = std::fopen(path.c_str(), "wb+x");
    if (file != nullptr) {
      return std::unique_ptr<SpillFile>(
          new SpillFile(file, std::move(path), options));
    }
    if (errno != EEXIST) {
      return Internal(StringPrintf("cannot create spill file \"%s\": %s",
                                   path.c_str(), std::strerror(errno)));
    }
  }
  return Internal(
      StringPrintf("cannot create spill file under \"%s\"", base.c_str()));
}

Status SpillFile::AppendRecord(const void* data, size_t size) {
  if (file_ == nullptr) return Internal("spill file already closed");
  if (!options_.compress) {
    uint32_t header[2] = {static_cast<uint32_t>(size),
                          SpillChecksum(data, size)};
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
        (size > 0 && std::fwrite(data, 1, size, file_) != size)) {
      return Internal(StringPrintf("spill write failed on \"%s\": %s",
                                   path_.c_str(), std::strerror(errno)));
    }
    ++records_written_;
    bytes_written_ += sizeof(header) + size;
    raw_bytes_written_ += sizeof(header) + size;
    return OkStatus();
  }
  // Block mode: pack [u32 size][payload] into the outgoing block.
  AppendU32(&block_, static_cast<uint32_t>(size));
  block_.append(static_cast<const char*>(data), size);
  ++records_written_;
  raw_bytes_written_ += 4 + size;
  sealed_ = false;
  if (block_.size() >= options_.block_bytes) return FlushBlock();
  return OkStatus();
}

Status SpillFile::FlushBlock() {
  if (block_.empty()) return OkStatus();
  scratch_.clear();
  size_t comp_size = SpillCompressBlock(block_.data(), block_.size(), &scratch_);
  // Store whichever representation is smaller; stored_size == raw_size marks
  // a stored-raw block (incompressible data costs only the frame header).
  const std::string& stored = comp_size < block_.size() ? scratch_ : block_;
  uint32_t header[3] = {static_cast<uint32_t>(block_.size()),
                        static_cast<uint32_t>(stored.size()),
                        SpillChecksum(stored.data(), stored.size())};
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fwrite(stored.data(), 1, stored.size(), file_) != stored.size()) {
    return Internal(StringPrintf("spill write failed on \"%s\": %s",
                                 path_.c_str(), std::strerror(errno)));
  }
  bytes_written_ += sizeof(header) + stored.size();
  block_.clear();
  return OkStatus();
}

Status SpillFile::Seal() {
  if (file_ == nullptr) return Internal("spill file already closed");
  if (sealed_) return OkStatus();
  if (options_.compress) {
    Status s = FlushBlock();
    if (!s.ok()) return s;
  }
  sealed_ = true;
  return OkStatus();
}

Status SpillFile::SeekToStart() {
  if (file_ == nullptr) return Internal("spill file already closed");
  Status s = Seal();
  if (!s.ok()) return s;
  if (std::fflush(file_) != 0 || std::fseek(file_, 0, SEEK_SET) != 0) {
    return Internal(StringPrintf("spill rewind failed on \"%s\": %s",
                                 path_.c_str(), std::strerror(errno)));
  }
  block_.clear();
  block_cursor_ = 0;
  bytes_read_ = 0;
  return OkStatus();
}

StatusOr<bool> SpillFile::ReadBlock() {
  uint32_t header[3];
  size_t n = std::fread(header, 1, sizeof(header), file_);
  if (n == 0 && std::feof(file_)) return false;
  if (n != sizeof(header)) {
    return Internal(
        StringPrintf("spill block header torn on \"%s\"", path_.c_str()));
  }
  const uint64_t raw_size = header[0], stored_size = header[1];
  // No block can exceed what this file was written with; reject corrupt
  // lengths before they turn into huge allocations.
  if (raw_size > raw_bytes_written_ || stored_size > bytes_written_ ||
      stored_size > SpillCompressBound(raw_size)) {
    return Internal(
        StringPrintf("spill block length corrupt on \"%s\"", path_.c_str()));
  }
  scratch_.resize(stored_size);
  if (stored_size > 0 &&
      std::fread(scratch_.data(), 1, scratch_.size(), file_) !=
          scratch_.size()) {
    return Internal(
        StringPrintf("spill block payload torn on \"%s\"", path_.c_str()));
  }
  if (SpillChecksum(scratch_.data(), scratch_.size()) != header[2]) {
    return Internal(StringPrintf("spill block checksum mismatch on \"%s\"",
                                 path_.c_str()));
  }
  bytes_read_ += sizeof(header) + stored_size;
  block_.clear();
  block_cursor_ = 0;
  if (stored_size == raw_size) {
    block_ = scratch_;  // stored raw
    return true;
  }
  Status s = SpillDecompressBlock(scratch_.data(), scratch_.size(), raw_size,
                                  &block_);
  if (!s.ok()) {
    return Internal(StringPrintf("spill block corrupt on \"%s\": %s",
                                 path_.c_str(), s.message().c_str()));
  }
  return true;
}

StatusOr<bool> SpillFile::ReadRecord(std::string* out) {
  if (file_ == nullptr) return Internal("spill file already closed");
  if (options_.compress) {
    if (block_cursor_ >= block_.size()) {
      StatusOr<bool> more = ReadBlock();
      if (!more.ok()) return more.status();
      if (!more.value()) return false;
    }
    const char* p = block_.data() + block_cursor_;
    const char* end = block_.data() + block_.size();
    uint32_t size = 0;
    if (!ReadU32(p, end, &size, &p) ||
        static_cast<size_t>(end - p) < size) {
      return Internal(
          StringPrintf("spill record torn inside block on \"%s\"",
                       path_.c_str()));
    }
    out->assign(p, size);
    block_cursor_ += 4 + size;
    return true;
  }
  uint32_t header[2];
  size_t n = std::fread(header, 1, sizeof(header), file_);
  if (n == 0 && std::feof(file_)) return false;
  if (n != sizeof(header)) {
    return Internal(
        StringPrintf("spill record header torn on \"%s\"", path_.c_str()));
  }
  // A valid payload can never exceed the bytes this file was written with;
  // reject corrupt lengths before resize() turns them into a ~4 GiB
  // allocation (std::bad_alloc) instead of a clean corruption error.
  if (header[0] > bytes_written_) {
    return Internal(
        StringPrintf("spill record length corrupt on \"%s\"", path_.c_str()));
  }
  out->resize(header[0]);
  if (header[0] > 0 &&
      std::fread(out->data(), 1, out->size(), file_) != out->size()) {
    return Internal(
        StringPrintf("spill record payload torn on \"%s\"", path_.c_str()));
  }
  if (SpillChecksum(out->data(), out->size()) != header[1]) {
    return Internal(
        StringPrintf("spill record checksum mismatch on \"%s\"",
                     path_.c_str()));
  }
  bytes_read_ += sizeof(header) + header[0];
  return true;
}

void SpillFile::CloseAndDelete() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    std::remove(path_.c_str());
  }
}

}  // namespace qprog
