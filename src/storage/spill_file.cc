#include "storage/spill_file.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

#if defined(_WIN32)
#include <process.h>
#define QPROG_GETPID _getpid
#else
#include <unistd.h>
#define QPROG_GETPID getpid
#endif

namespace qprog {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

bool ReadU32(const char* p, const char* end, uint32_t* v, const char** next) {
  if (end - p < 4) return false;
  std::memcpy(v, p, 4);
  *next = p + 4;
  return true;
}

std::string DefaultSpillDir() {
  const char* tmp = std::getenv("TMPDIR");
  return (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
}

}  // namespace

uint32_t SpillChecksum(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 16777619u;
  }
  return h;
}

void AppendRowBytes(const Row& row, std::string* out) {
  AppendU32(out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) {
    out->push_back(static_cast<char>(v.type()));
    switch (v.type()) {
      case TypeId::kNull:
        break;
      case TypeId::kBool:
        out->push_back(v.bool_value() ? 1 : 0);
        break;
      case TypeId::kInt64: {
        int64_t x = v.int64_value();
        char buf[8];
        std::memcpy(buf, &x, 8);
        out->append(buf, 8);
        break;
      }
      case TypeId::kDouble: {
        double x = v.double_value();
        char buf[8];
        std::memcpy(buf, &x, 8);
        out->append(buf, 8);
        break;
      }
      case TypeId::kDate: {
        int32_t x = v.date_value();
        char buf[4];
        std::memcpy(buf, &x, 4);
        out->append(buf, 4);
        break;
      }
      case TypeId::kString: {
        const std::string& s = v.string_value();
        AppendU32(out, static_cast<uint32_t>(s.size()));
        out->append(s);
        break;
      }
    }
  }
}

Status ParseRowBytes(const std::string& bytes, Row* out) {
  const char* p = bytes.data();
  const char* end = p + bytes.size();
  uint32_t nfields = 0;
  if (!ReadU32(p, end, &nfields, &p)) {
    return Internal("spill row: truncated field count");
  }
  out->clear();
  out->reserve(nfields);
  for (uint32_t i = 0; i < nfields; ++i) {
    if (p >= end) return Internal("spill row: truncated type tag");
    auto tag = static_cast<TypeId>(static_cast<unsigned char>(*p++));
    switch (tag) {
      case TypeId::kNull:
        out->push_back(Value::Null());
        break;
      case TypeId::kBool:
        if (p >= end) return Internal("spill row: truncated bool");
        out->push_back(Value::Bool(*p++ != 0));
        break;
      case TypeId::kInt64: {
        if (end - p < 8) return Internal("spill row: truncated int64");
        int64_t x;
        std::memcpy(&x, p, 8);
        p += 8;
        out->push_back(Value::Int64(x));
        break;
      }
      case TypeId::kDouble: {
        if (end - p < 8) return Internal("spill row: truncated double");
        double x;
        std::memcpy(&x, p, 8);
        p += 8;
        out->push_back(Value::Double(x));
        break;
      }
      case TypeId::kDate: {
        if (end - p < 4) return Internal("spill row: truncated date");
        int32_t x;
        std::memcpy(&x, p, 4);
        p += 4;
        out->push_back(Value::Date(x));
        break;
      }
      case TypeId::kString: {
        uint32_t len = 0;
        if (!ReadU32(p, end, &len, &p) || end - p < len) {
          return Internal("spill row: truncated string");
        }
        out->push_back(Value::String(std::string(p, len)));
        p += len;
        break;
      }
      default:
        return Internal(StringPrintf("spill row: unknown type tag %d",
                                     static_cast<int>(tag)));
    }
  }
  if (p != end) return Internal("spill row: trailing bytes");
  return OkStatus();
}

// --------------------------------------------------------------------------
// SpillFile

SpillFile::SpillFile(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

SpillFile::~SpillFile() { CloseAndDelete(); }

StatusOr<std::unique_ptr<SpillFile>> SpillFile::Create(const std::string& dir) {
  static std::atomic<uint64_t> counter{0};
  const std::string base = dir.empty() ? DefaultSpillDir() : dir;
  // The pid+counter name is unique within a process; the "x" (exclusive)
  // mode turns a cross-process collision into a clean retry.
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::string path = StringPrintf(
        "%s/%s%d-%llu.tmp", base.c_str(), kFilePrefix,
        static_cast<int>(QPROG_GETPID()),
        static_cast<unsigned long long>(
            counter.fetch_add(1, std::memory_order_relaxed)));
    std::FILE* file = std::fopen(path.c_str(), "wb+x");
    if (file != nullptr) {
      return std::unique_ptr<SpillFile>(new SpillFile(file, std::move(path)));
    }
    if (errno != EEXIST) {
      return Internal(StringPrintf("cannot create spill file \"%s\": %s",
                                   path.c_str(), std::strerror(errno)));
    }
  }
  return Internal(
      StringPrintf("cannot create spill file under \"%s\"", base.c_str()));
}

Status SpillFile::AppendRecord(const void* data, size_t size) {
  if (file_ == nullptr) return Internal("spill file already closed");
  uint32_t header[2] = {static_cast<uint32_t>(size),
                        SpillChecksum(data, size)};
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      (size > 0 && std::fwrite(data, 1, size, file_) != size)) {
    return Internal(StringPrintf("spill write failed on \"%s\": %s",
                                 path_.c_str(), std::strerror(errno)));
  }
  ++records_written_;
  bytes_written_ += sizeof(header) + size;
  return OkStatus();
}

Status SpillFile::SeekToStart() {
  if (file_ == nullptr) return Internal("spill file already closed");
  if (std::fflush(file_) != 0 || std::fseek(file_, 0, SEEK_SET) != 0) {
    return Internal(StringPrintf("spill rewind failed on \"%s\": %s",
                                 path_.c_str(), std::strerror(errno)));
  }
  return OkStatus();
}

StatusOr<bool> SpillFile::ReadRecord(std::string* out) {
  if (file_ == nullptr) return Internal("spill file already closed");
  uint32_t header[2];
  size_t n = std::fread(header, 1, sizeof(header), file_);
  if (n == 0 && std::feof(file_)) return false;
  if (n != sizeof(header)) {
    return Internal(
        StringPrintf("spill record header torn on \"%s\"", path_.c_str()));
  }
  // A valid payload can never exceed the bytes this file was written with;
  // reject corrupt lengths before resize() turns them into a ~4 GiB
  // allocation (std::bad_alloc) instead of a clean corruption error.
  if (header[0] > bytes_written_) {
    return Internal(
        StringPrintf("spill record length corrupt on \"%s\"", path_.c_str()));
  }
  out->resize(header[0]);
  if (header[0] > 0 &&
      std::fread(out->data(), 1, out->size(), file_) != out->size()) {
    return Internal(
        StringPrintf("spill record payload torn on \"%s\"", path_.c_str()));
  }
  if (SpillChecksum(out->data(), out->size()) != header[1]) {
    return Internal(
        StringPrintf("spill record checksum mismatch on \"%s\"",
                     path_.c_str()));
  }
  return true;
}

void SpillFile::CloseAndDelete() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    std::remove(path_.c_str());
  }
}

}  // namespace qprog
