// Catalog / Database: the named collection of tables, indexes and statistics
// visible to the planner and to progress estimators. Matches the paper's
// setup: base-table cardinalities are exactly known from the catalog
// (Section 5.1) while everything else must be inferred from single-relation
// statistics and execution feedback.

#ifndef QPROG_STORAGE_CATALOG_H_
#define QPROG_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/table.h"

namespace qprog {

class OrderedIndex;  // index/ordered_index.h
class TableStats;    // stats/table_stats.h

/// Owns tables, their secondary indexes and their statistics.
class Database {
 public:
  Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  // Move operations are defined out of line: the maps hold unique_ptrs to
  // types that are forward-declared here.
  Database(Database&&) noexcept;
  Database& operator=(Database&&) noexcept;
  ~Database();

  /// Creates an empty table. Fails with AlreadyExists on duplicate names.
  StatusOr<Table*> CreateTable(std::string name, Schema schema);

  /// Adds an already-built table (used by generators).
  StatusOr<Table*> AddTable(Table table);

  /// Removes a table together with its indexes and statistics.
  Status DropTable(const std::string& name);

  /// Lookup; nullptr when absent.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Builds (or rebuilds) an ordered secondary index on `column` of `table`.
  /// Index name is "<table>.<column>".
  StatusOr<const OrderedIndex*> BuildOrderedIndex(const std::string& table,
                                                  const std::string& column);

  /// Returns the index on `table`.`column`, or nullptr.
  const OrderedIndex* GetOrderedIndex(const std::string& table,
                                      const std::string& column) const;

  /// Attaches statistics for `table` (replacing any existing ones).
  void SetStats(const std::string& table, std::unique_ptr<TableStats> stats);

  /// Returns statistics for `table`, or nullptr if none collected.
  const TableStats* GetStats(const std::string& table) const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::unique_ptr<OrderedIndex>> indexes_;
  std::map<std::string, std::unique_ptr<TableStats>> stats_;
};

}  // namespace qprog

#endif  // QPROG_STORAGE_CATALOG_H_
