#include "workload/zipf_join.h"

#include <algorithm>

#include "common/random.h"
#include "common/zipf.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/join.h"
#include "exec/scan.h"

namespace qprog {

namespace {

Schema OneIntColumn(const char* name) {
  return Schema({Field(name, TypeId::kInt64)});
}

}  // namespace

ZipfJoinData::ZipfJoinData(const ZipfJoinConfig& config)
    : config_(config),
      r1_("r1", OneIntColumn("a")),
      r2_("r2", OneIntColumn("b")) {
  Rng rng(config.seed);

  // R1: unique values 0..n1-1 in the configured physical order. Value v's
  // zipf rank is v, so ascending order = most frequent first.
  std::vector<int64_t> values(config.r1_rows);
  for (uint64_t i = 0; i < config.r1_rows; ++i) {
    values[i] = static_cast<int64_t>(i);
  }
  switch (config.order) {
    case R1Order::kSkewFirst:
      break;
    case R1Order::kSkewLast:
      std::reverse(values.begin(), values.end());
      break;
    case R1Order::kRandom:
      rng.Shuffle(&values);
      break;
  }
  r1_.Reserve(config.r1_rows);
  for (int64_t v : values) r1_.AppendRow({Value::Int64(v)});

  // R2: zipfian draw over the same domain.
  ZipfDistribution zipf(config.r1_rows, config.z);
  r2_.Reserve(config.r2_rows);
  for (uint64_t i = 0; i < config.r2_rows; ++i) {
    r2_.AppendRow({Value::Int64(static_cast<int64_t>(zipf.Sample(&rng)))});
  }
  r2_index_ = std::make_unique<OrderedIndex>(&r2_, 0);
}

uint64_t ZipfJoinData::MatchCount(int64_t v) const {
  return r2_index_->EqualRange(Value::Int64(v)).size();
}

namespace {

OperatorPtr CountStarOver(OperatorPtr child) {
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  return std::make_unique<HashAggregate>(std::move(child),
                                         std::vector<ExprPtr>{},
                                         std::vector<std::string>{},
                                         std::move(aggs));
}

OperatorPtr MaybeFilter(OperatorPtr child, ExprPtr filter) {
  if (filter == nullptr) return child;
  return std::make_unique<Filter>(std::move(child), std::move(filter));
}

}  // namespace

PhysicalPlan ZipfJoinData::BuildInlPlan(ExprPtr r1_filter, bool linear) const {
  auto outer = MaybeFilter(std::make_unique<SeqScan>(&r1_), std::move(r1_filter));
  auto seek = std::make_unique<IndexSeek>(r2_index_.get());
  auto join = std::make_unique<IndexNestedLoopsJoin>(
      std::move(outer), std::move(seek), eb::Col(0, "a"));
  join->set_is_linear(linear);
  return PhysicalPlan(CountStarOver(std::move(join)));
}

PhysicalPlan ZipfJoinData::BuildHashPlan(ExprPtr r1_filter, bool linear) const {
  auto build = MaybeFilter(std::make_unique<SeqScan>(&r1_), std::move(r1_filter));
  auto probe = std::make_unique<SeqScan>(&r2_);
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0, "b"));
  bk.push_back(eb::Col(0, "a"));
  auto join = std::make_unique<HashJoin>(std::move(probe), std::move(build),
                                         std::move(pk), std::move(bk));
  join->set_is_linear(linear);
  return PhysicalPlan(CountStarOver(std::move(join)));
}

}  // namespace qprog
