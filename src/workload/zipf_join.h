// The synthetic R1 ⋈ R2 zipfian-join workload of Sections 5.2-5.4.
//
// R1(A) holds n1 unique values 0..n1-1. R2(B) holds n2 values drawn from a
// zipfian distribution with parameter z over the same domain, so the R1
// tuple with value 0 joins with ~Pmf(0)*n2 rows of R2 — the "high join skew"
// element. The physical order of R1 is the experiment's knob:
//
//   kSkewFirst — high-frequency values first (Figure 4: dne underestimates)
//   kSkewLast  — the worst case, skew element at the end (Figure 5, Table 1)
//   kRandom    — random order (where dne is provably good, Theorem 3)
//
// Plans put a COUNT(*) aggregate above the join so the join's production is
// part of the measured work, as in the paper's instrumented server runs.

#ifndef QPROG_WORKLOAD_ZIPF_JOIN_H_
#define QPROG_WORKLOAD_ZIPF_JOIN_H_

#include <cstdint>
#include <memory>

#include "exec/plan.h"
#include "expr/expr.h"
#include "index/ordered_index.h"
#include "storage/table.h"

namespace qprog {

enum class R1Order { kSkewFirst, kSkewLast, kRandom };

struct ZipfJoinConfig {
  uint64_t r1_rows = 100000;
  uint64_t r2_rows = 100000;
  double z = 2.0;
  R1Order order = R1Order::kSkewFirst;
  uint64_t seed = 42;
};

/// Owns the generated tables and the index on R2.B.
class ZipfJoinData {
 public:
  explicit ZipfJoinData(const ZipfJoinConfig& config);

  ZipfJoinData(const ZipfJoinData&) = delete;
  ZipfJoinData& operator=(const ZipfJoinData&) = delete;

  const Table& r1() const { return r1_; }
  const Table& r2() const { return r2_; }
  const OrderedIndex& r2_index() const { return *r2_index_; }
  const ZipfJoinConfig& config() const { return config_; }

  /// count(*) over R1 ⋈INL R2 on A = B (index nested loops, R1 outer).
  /// `r1_filter` (optional) is a pushed σ on R1 applied in a Filter node.
  /// `linear` marks the join linear for the bounds tracker.
  PhysicalPlan BuildInlPlan(ExprPtr r1_filter = nullptr,
                            bool linear = false) const;

  /// count(*) over R1 ⋈hash R2 (R1 build side, R2 probe side), the
  /// scan-based alternative of Section 5.4.
  PhysicalPlan BuildHashPlan(ExprPtr r1_filter = nullptr,
                             bool linear = false) const;

  /// Number of R2 rows joining with R1 value `v` (ground truth, for tests).
  uint64_t MatchCount(int64_t v) const;

 private:
  ZipfJoinConfig config_;
  Table r1_;
  Table r2_;
  std::unique_ptr<OrderedIndex> r2_index_;
};

}  // namespace qprog

#endif  // QPROG_WORKLOAD_ZIPF_JOIN_H_
