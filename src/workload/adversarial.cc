#include "workload/adversarial.h"

#include "common/macros.h"
#include "exec/filter_project.h"
#include "exec/join.h"
#include "exec/scan.h"

namespace qprog {

AdversarialPair::AdversarialPair(uint64_t n)
    : n_(n),
      special_position_(n * 9 / 10),
      r1_with_x_("r1_x", Schema({Field("a", TypeId::kInt64)})),
      r1_with_y_("r1_y", Schema({Field("a", TypeId::kInt64)})),
      r2_("r2", Schema({Field("b", TypeId::kInt64)})) {
  QPROG_CHECK(n >= 100);
  // Background values are multiples of 4 (4, 8, ..., 4n); x and y are two
  // integers inside the same inter-value gap, so swapping them cannot move
  // any sort boundary. The gap is picked so that the pair's sorted rank sits
  // in the middle of a 16-way equi-depth bucket, keeping bounded-budget
  // histograms bit-identical across the two instances.
  uint64_t depth = (n + 15) / 16;
  uint64_t rank = depth * ((n / 2) / depth) + depth / 2;
  x_ = static_cast<int64_t>(4 * rank) + 1;
  y_ = static_cast<int64_t>(4 * rank) + 2;
  r1_with_x_.Reserve(n);
  r1_with_y_.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (i == special_position_) {
      r1_with_x_.AppendRow({Value::Int64(x_)});
      r1_with_y_.AppendRow({Value::Int64(y_)});
    } else {
      int64_t v = static_cast<int64_t>(4 * (i + 1));
      r1_with_x_.AppendRow({Value::Int64(v)});
      r1_with_y_.AppendRow({Value::Int64(v)});
    }
  }
  uint64_t r2_rows = 9 * n + 9;
  r2_.Reserve(r2_rows);
  for (uint64_t i = 0; i < r2_rows; ++i) r2_.AppendRow({Value::Int64(y_)});
  r2_index_ = std::make_unique<OrderedIndex>(&r2_, 0);
}

PhysicalPlan AdversarialPair::BuildPlan(bool use_y_instance) const {
  const Table* r1 = use_y_instance ? &r1_with_y_ : &r1_with_x_;
  auto scan = std::make_unique<SeqScan>(r1);
  auto sigma = std::make_unique<Filter>(
      std::move(scan), eb::Or(eb::Eq(eb::Col(0, "a"), eb::Int(x_)),
                              eb::Eq(eb::Col(0, "a"), eb::Int(y_))));
  auto seek = std::make_unique<IndexSeek>(r2_index_.get());
  auto join = std::make_unique<IndexNestedLoopsJoin>(
      std::move(sigma), std::move(seek), eb::Col(0, "a"));
  return PhysicalPlan(std::move(join));
}

}  // namespace qprog
