// The Example-1 / Theorem-1 adversarial instance pair.
//
// Two instances of R1 differing in a single tuple t (value x vs y, both
// absent from the rest of the relation and both interior to the same
// histogram bucket, so every single-relation statistic with a bounded bucket
// budget is identical on the two instances). R2 holds 9|R1|+9 copies of y.
// Under scan(R1) -> sigma(A=x OR A=y) -> INL-join(R2.B), total(Q) is
// |R1|+1 on the x-instance and 10|R1|+10 on the y-instance, yet no progress
// estimator can tell the instances apart before t is read.

#ifndef QPROG_WORKLOAD_ADVERSARIAL_H_
#define QPROG_WORKLOAD_ADVERSARIAL_H_

#include <cstdint>
#include <memory>

#include "exec/plan.h"
#include "index/ordered_index.h"
#include "storage/table.h"

namespace qprog {

class AdversarialPair {
 public:
  /// `n` is |R1|; the special tuple sits after a 0.9 fraction of the rows.
  explicit AdversarialPair(uint64_t n);

  AdversarialPair(const AdversarialPair&) = delete;
  AdversarialPair& operator=(const AdversarialPair&) = delete;

  const Table& r1_with_x() const { return r1_with_x_; }
  const Table& r1_with_y() const { return r1_with_y_; }
  const Table& r2() const { return r2_; }
  int64_t x() const { return x_; }
  int64_t y() const { return y_; }
  uint64_t special_position() const { return special_position_; }

  /// The Figure-2 plan over the chosen instance.
  PhysicalPlan BuildPlan(bool use_y_instance) const;

 private:
  uint64_t n_;
  uint64_t special_position_;
  int64_t x_;
  int64_t y_;
  Table r1_with_x_;
  Table r1_with_y_;
  Table r2_;
  std::unique_ptr<OrderedIndex> r2_index_;
};

}  // namespace qprog

#endif  // QPROG_WORKLOAD_ADVERSARIAL_H_
