// Query-template fingerprinting for the admission predictor (LearnedWMP
// direction, PAPERS.md): two queries that differ only in their literal
// values share a template, and per-template telemetry from past runs
// (obs/workload_stats.h) is the prior for a new query's peak memory and
// work. The template is the lexed token stream with every literal replaced
// by '?' — identifiers are already lower-cased by the lexer, so the mapping
// is insensitive to case and whitespace but deliberately *not* to join
// order or predicate structure (those change the plan, and with it the
// resource profile).

#ifndef QPROG_SQL_FINGERPRINT_H_
#define QPROG_SQL_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"

namespace qprog {
namespace sql {

/// Canonical template text of `query`: tokens joined by single spaces,
/// integer/float/string literals replaced by '?'. kInvalidArgument when the
/// query does not lex (the caller decides whether that is fatal — the
/// planner will reject it anyway).
StatusOr<std::string> QueryTemplate(const std::string& query);

/// 64-bit FNV-1a of QueryTemplate(query). Queries that do not lex hash
/// their raw text instead, so every string gets *some* stable fingerprint
/// (a malformed query still reaches the planner and fails there; its
/// fingerprint only ever keys an error-count entry).
uint64_t TemplateFingerprint(const std::string& query);

}  // namespace sql
}  // namespace qprog

#endif  // QPROG_SQL_FINGERPRINT_H_
