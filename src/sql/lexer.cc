#include "sql/lexer.h"

#include <cctype>
#include <cstring>

#include "common/strings.h"

namespace qprog {
namespace sql {

bool Token::Is(const char* s) const {
  if (type == TokenType::kEnd) return false;
  return text == ToLower(s);
}

StatusOr<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto peek = [&](size_t off = 0) -> char {
    return i + off < n ? input[i + off] : '\0';
  };
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comments to end of line.
    if (c == '-' && peek(1) == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tok.type = TokenType::kIdentifier;
      tok.text = ToLower(input.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      tok.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      tok.text = input.substr(start, i - start);
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (peek(1) == '\'') {  // escaped quote
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += input[i++];
      }
      if (!closed) {
        return InvalidArgument(StringPrintf(
            "unterminated string literal at position %zu", tok.position));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(value);
    } else if (c == '<' && (peek(1) == '=' || peek(1) == '>')) {
      tok.type = TokenType::kSymbol;
      tok.text = input.substr(i, 2);
      i += 2;
    } else if (c == '>' && peek(1) == '=') {
      tok.type = TokenType::kSymbol;
      tok.text = ">=";
      i += 2;
    } else if (c == '!' && peek(1) == '=') {
      tok.type = TokenType::kSymbol;
      tok.text = "<>";
      i += 2;
    } else if (std::strchr("=<>+-*/(),.;", c) != nullptr) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
    } else {
      return InvalidArgument(
          StringPrintf("unexpected character '%c' at position %zu", c, i));
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sql
}  // namespace qprog
