#include "sql/parser.h"

#include <cstdlib>
#include <set>

#include "common/strings.h"
#include "sql/lexer.h"
#include "types/date.h"

namespace qprog {
namespace sql {

namespace {

const std::set<std::string>& ReservedWords() {
  static const std::set<std::string>* words = new std::set<std::string>{
      "select", "from",  "where", "group", "by",    "having", "order",
      "limit",  "join",  "inner", "on",    "and",   "or",     "not",
      "like",   "in",    "between", "is",  "null",  "as",     "asc",
      "desc",   "date",  "distinct"};
  return *words;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SelectStmt> ParseSelect() {
    QPROG_RETURN_IF_ERROR(Expect("select"));
    SelectStmt stmt;

    // Select list.
    if (Cur().Is("*")) {
      Advance();
      stmt.items.push_back(SelectItem{nullptr, "*"});
    } else {
      for (;;) {
        SelectItem item;
        QPROG_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Cur().Is("as")) {
          Advance();
          if (!Cur().Is(TokenType::kIdentifier)) {
            return Error("expected alias after AS");
          }
          item.alias = Cur().text;
          Advance();
        } else if (Cur().Is(TokenType::kIdentifier) && !IsReserved(Cur())) {
          item.alias = Cur().text;
          Advance();
        }
        stmt.items.push_back(std::move(item));
        if (!Cur().Is(",")) break;
        Advance();
      }
    }

    QPROG_RETURN_IF_ERROR(Expect("from"));
    QPROG_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    stmt.from.push_back(std::move(first));
    for (;;) {
      if (Cur().Is(",")) {
        Advance();
        QPROG_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        stmt.from.push_back(std::move(t));
        continue;
      }
      if (Cur().Is("inner") || Cur().Is("join")) {
        if (Cur().Is("inner")) Advance();
        QPROG_RETURN_IF_ERROR(Expect("join"));
        JoinClause join;
        QPROG_ASSIGN_OR_RETURN(join.table, ParseTableRef());
        QPROG_RETURN_IF_ERROR(Expect("on"));
        QPROG_ASSIGN_OR_RETURN(join.on, ParseExpr());
        stmt.joins.push_back(std::move(join));
        continue;
      }
      break;
    }

    if (Cur().Is("where")) {
      Advance();
      QPROG_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (Cur().Is("group")) {
      Advance();
      QPROG_RETURN_IF_ERROR(Expect("by"));
      for (;;) {
        QPROG_ASSIGN_OR_RETURN(SqlExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
        if (!Cur().Is(",")) break;
        Advance();
      }
    }
    if (Cur().Is("having")) {
      Advance();
      QPROG_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (Cur().Is("order")) {
      Advance();
      QPROG_RETURN_IF_ERROR(Expect("by"));
      for (;;) {
        OrderItem item;
        QPROG_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Cur().Is("asc")) {
          Advance();
        } else if (Cur().Is("desc")) {
          item.descending = true;
          Advance();
        }
        stmt.order_by.push_back(std::move(item));
        if (!Cur().Is(",")) break;
        Advance();
      }
    }
    if (Cur().Is("limit")) {
      Advance();
      if (!Cur().Is(TokenType::kInteger)) {
        return Error("expected integer after LIMIT");
      }
      stmt.limit = static_cast<uint64_t>(std::strtoull(
          Cur().text.c_str(), nullptr, 10));
      Advance();
    }
    if (Cur().Is(";")) Advance();
    if (!Cur().Is(TokenType::kEnd)) {
      return Error(StringPrintf("unexpected trailing input '%s'",
                                Cur().text.c_str()));
    }
    return stmt;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t off = 1) const {
    size_t i = pos_ + off;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  static bool IsReserved(const Token& tok) {
    return ReservedWords().count(tok.text) > 0;
  }

  Status Error(const std::string& message) const {
    return InvalidArgument(StringPrintf("parse error at position %zu: %s",
                                        Cur().position, message.c_str()));
  }

  Status Expect(const char* word) {
    if (!Cur().Is(word)) {
      return Error(StringPrintf("expected '%s', found '%s'", word,
                                Cur().type == TokenType::kEnd
                                    ? "<end>"
                                    : Cur().text.c_str()));
    }
    Advance();
    return OkStatus();
  }

  StatusOr<TableRef> ParseTableRef() {
    if (!Cur().Is(TokenType::kIdentifier) || IsReserved(Cur())) {
      return Error("expected table name");
    }
    TableRef ref;
    ref.table = Cur().text;
    Advance();
    if (Cur().Is(TokenType::kIdentifier) && !IsReserved(Cur())) {
      ref.alias = Cur().text;
      Advance();
    } else {
      ref.alias = ref.table;
    }
    return ref;
  }

  // ---- expressions, precedence climbing --------------------------------
  StatusOr<SqlExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<SqlExprPtr> ParseOr() {
    QPROG_ASSIGN_OR_RETURN(SqlExprPtr left, ParseAnd());
    while (Cur().Is("or")) {
      Advance();
      QPROG_ASSIGN_OR_RETURN(SqlExprPtr right, ParseAnd());
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kOr;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  StatusOr<SqlExprPtr> ParseAnd() {
    QPROG_ASSIGN_OR_RETURN(SqlExprPtr left, ParseNot());
    while (Cur().Is("and")) {
      Advance();
      QPROG_ASSIGN_OR_RETURN(SqlExprPtr right, ParseNot());
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kAnd;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  StatusOr<SqlExprPtr> ParseNot() {
    if (Cur().Is("not")) {
      Advance();
      QPROG_ASSIGN_OR_RETURN(SqlExprPtr child, ParseNot());
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kNot;
      node->children.push_back(std::move(child));
      return node;
    }
    return ParsePredicate();
  }

  StatusOr<SqlExprPtr> ParsePredicate() {
    QPROG_ASSIGN_OR_RETURN(SqlExprPtr left, ParseAdditive());

    bool negated = false;
    if (Cur().Is("not") &&
        (Peek().Is("like") || Peek().Is("in") || Peek().Is("between"))) {
      negated = true;
      Advance();
    }

    if (Cur().Is("like")) {
      Advance();
      if (!Cur().Is(TokenType::kString)) {
        return Error("expected string pattern after LIKE");
      }
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kLike;
      node->pattern = Cur().text;
      node->negated = negated;
      node->children.push_back(std::move(left));
      Advance();
      return node;
    }
    if (Cur().Is("in")) {
      Advance();
      QPROG_RETURN_IF_ERROR(Expect("("));
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kInList;
      node->negated = negated;
      node->children.push_back(std::move(left));
      for (;;) {
        QPROG_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        node->in_list.push_back(std::move(v));
        if (!Cur().Is(",")) break;
        Advance();
      }
      QPROG_RETURN_IF_ERROR(Expect(")"));
      return node;
    }
    if (Cur().Is("between")) {
      Advance();
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kBetween;
      node->negated = negated;
      node->children.push_back(std::move(left));
      QPROG_ASSIGN_OR_RETURN(SqlExprPtr lo, ParseAdditive());
      QPROG_RETURN_IF_ERROR(Expect("and"));
      QPROG_ASSIGN_OR_RETURN(SqlExprPtr hi, ParseAdditive());
      node->children.push_back(std::move(lo));
      node->children.push_back(std::move(hi));
      return node;
    }
    if (Cur().Is("is")) {
      Advance();
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kIsNull;
      if (Cur().Is("not")) {
        node->negated = true;
        Advance();
      }
      QPROG_RETURN_IF_ERROR(Expect("null"));
      node->children.push_back(std::move(left));
      return node;
    }
    if (negated) return Error("expected LIKE, IN or BETWEEN after NOT");

    if (Cur().Is("=") || Cur().Is("<>") || Cur().Is("<") || Cur().Is("<=") ||
        Cur().Is(">") || Cur().Is(">=")) {
      std::string op = Cur().text;
      Advance();
      QPROG_ASSIGN_OR_RETURN(SqlExprPtr right, ParseAdditive());
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kCompare;
      node->op = std::move(op);
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      return node;
    }
    return left;
  }

  StatusOr<SqlExprPtr> ParseAdditive() {
    QPROG_ASSIGN_OR_RETURN(SqlExprPtr left, ParseMultiplicative());
    while (Cur().Is("+") || Cur().Is("-")) {
      std::string op = Cur().text;
      Advance();
      QPROG_ASSIGN_OR_RETURN(SqlExprPtr right, ParseMultiplicative());
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kArith;
      node->op = std::move(op);
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  StatusOr<SqlExprPtr> ParseMultiplicative() {
    QPROG_ASSIGN_OR_RETURN(SqlExprPtr left, ParsePrimary());
    while (Cur().Is("*") || Cur().Is("/")) {
      std::string op = Cur().text;
      Advance();
      QPROG_ASSIGN_OR_RETURN(SqlExprPtr right, ParsePrimary());
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kArith;
      node->op = std::move(op);
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  StatusOr<Value> ParseLiteralValue() {
    if (Cur().Is(TokenType::kInteger)) {
      Value v = Value::Int64(std::strtoll(Cur().text.c_str(), nullptr, 10));
      Advance();
      return v;
    }
    if (Cur().Is(TokenType::kFloat)) {
      Value v = Value::Double(std::strtod(Cur().text.c_str(), nullptr));
      Advance();
      return v;
    }
    if (Cur().Is(TokenType::kString)) {
      Value v = Value::String(Cur().text);
      Advance();
      return v;
    }
    if (Cur().Is("date") && Peek().Is(TokenType::kString)) {
      Advance();
      QPROG_ASSIGN_OR_RETURN(int32_t days, ParseDate(Cur().text));
      Advance();
      return Value::Date(days);
    }
    if (Cur().Is("null")) {
      Advance();
      return Value::Null();
    }
    return Error("expected literal");
  }

  StatusOr<SqlExprPtr> ParsePrimary() {
    // Unary minus on numeric literals.
    if (Cur().Is("-") &&
        (Peek().Is(TokenType::kInteger) || Peek().Is(TokenType::kFloat))) {
      Advance();
      QPROG_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kLiteral;
      node->literal = v.type() == TypeId::kInt64
                          ? Value::Int64(-v.int64_value())
                          : Value::Double(-v.double_value());
      return node;
    }
    if (Cur().Is("(")) {
      Advance();
      QPROG_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseExpr());
      QPROG_RETURN_IF_ERROR(Expect(")"));
      return inner;
    }
    if (Cur().Is(TokenType::kInteger) || Cur().Is(TokenType::kFloat) ||
        Cur().Is(TokenType::kString) || Cur().Is("null") ||
        (Cur().Is("date") && Peek().Is(TokenType::kString))) {
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kLiteral;
      QPROG_ASSIGN_OR_RETURN(node->literal, ParseLiteralValue());
      return node;
    }
    if (Cur().Is(TokenType::kIdentifier)) {
      std::string name = Cur().text;
      // Aggregate function call?
      if (Peek().Is("(") &&
          (name == "count" || name == "sum" || name == "avg" ||
           name == "min" || name == "max")) {
        Advance();  // name
        Advance();  // (
        auto node = std::make_unique<SqlExpr>();
        node->kind = SqlExprKind::kFunc;
        node->func_name = name;
        if (Cur().Is("*")) {
          node->star = true;
          Advance();
        } else {
          if (Cur().Is("distinct")) {
            node->distinct = true;
            Advance();
          }
          QPROG_ASSIGN_OR_RETURN(SqlExprPtr arg, ParseExpr());
          node->children.push_back(std::move(arg));
        }
        QPROG_RETURN_IF_ERROR(Expect(")"));
        return node;
      }
      if (IsReserved(Cur())) {
        return Error(StringPrintf("unexpected keyword '%s'", name.c_str()));
      }
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kColumn;
      Advance();
      if (Cur().Is(".") && Peek().Is(TokenType::kIdentifier)) {
        node->table = name;
        Advance();
        node->column = Cur().text;
        Advance();
      } else {
        node->column = name;
      }
      return node;
    }
    return Error(StringPrintf("unexpected token '%s'",
                              Cur().type == TokenType::kEnd
                                  ? "<end>"
                                  : Cur().text.c_str()));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<SelectStmt> Parse(const std::string& input) {
  QPROG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

}  // namespace sql
}  // namespace qprog
