// Unresolved SQL AST produced by the parser and consumed by the planner.

#ifndef QPROG_SQL_AST_H_
#define QPROG_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "types/compare_op.h"
#include "types/value.h"

namespace qprog {
namespace sql {

struct SqlExpr;
using SqlExprPtr = std::unique_ptr<SqlExpr>;

enum class SqlExprKind {
  kColumn,    // [table.]column
  kLiteral,   // 42, 3.14, 'x', DATE '1995-01-01'
  kCompare,   // = <> < <= > >=
  kArith,     // + - * /
  kAnd,
  kOr,
  kNot,
  kLike,      // [NOT] LIKE
  kInList,    // [NOT] IN (literals)
  kBetween,   // BETWEEN lo AND hi
  kIsNull,    // IS [NOT] NULL
  kFunc,      // count/sum/avg/min/max(expr | *), [DISTINCT]
};

struct SqlExpr {
  SqlExprKind kind = SqlExprKind::kLiteral;

  // kColumn
  std::string table;   // optional qualifier
  std::string column;

  // kLiteral
  Value literal;

  // kCompare / kArith operator spelled as text: "=", "<>", "+", ...
  std::string op;

  // children: binary ops use [0],[1]; NOT/IsNull/Like/InList use [0];
  // BETWEEN uses [0]=value,[1]=lo,[2]=hi; kFunc uses [0] unless star.
  std::vector<SqlExprPtr> children;

  // kLike
  std::string pattern;
  bool negated = false;  // NOT LIKE / NOT IN / IS NOT NULL

  // kInList
  std::vector<Value> in_list;

  // kFunc
  std::string func_name;  // lower-case
  bool star = false;      // count(*)
  bool distinct = false;  // count(distinct x)
};

struct SelectItem {
  SqlExprPtr expr;  // null means '*'
  std::string alias;
};

struct TableRef {
  std::string table;
  std::string alias;  // defaults to table name
};

/// One `JOIN <table> ON <cond>` clause (INNER joins only in the subset).
struct JoinClause {
  TableRef table;
  SqlExprPtr on;
};

struct OrderItem {
  SqlExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;     // comma-separated relations
  std::vector<JoinClause> joins;  // explicit JOIN ... ON chains
  SqlExprPtr where;
  std::vector<SqlExprPtr> group_by;
  SqlExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<uint64_t> limit;
};

}  // namespace sql
}  // namespace qprog

#endif  // QPROG_SQL_AST_H_
