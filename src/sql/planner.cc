#include "sql/planner.h"

#include <functional>
#include <map>
#include <set>

#include "common/strings.h"
#include "exec/aggregate.h"
#include "exec/exchange.h"
#include "exec/filter_project.h"
#include "exec/join.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "sql/parser.h"
#include "stats/selectivity.h"
#include "stats/table_stats.h"

namespace qprog {
namespace sql {

namespace {

// ---------------------------------------------------------------------------
// Binding scope: the flat column layout of the operator output being built.

struct ColumnBinding {
  std::string qualifier;  // table alias
  std::string name;       // column name
  size_t index = 0;
};

class Scope {
 public:
  void AddTable(const std::string& alias, const Schema& schema) {
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      columns_.push_back(
          ColumnBinding{alias, schema.field(i).name, columns_.size()});
    }
  }

  size_t size() const { return columns_.size(); }
  const std::vector<ColumnBinding>& columns() const { return columns_; }

  StatusOr<size_t> Resolve(const std::string& qualifier,
                           const std::string& name) const {
    int found = -1;
    for (const ColumnBinding& c : columns_) {
      if (!qualifier.empty() && c.qualifier != qualifier) continue;
      if (c.name != name) continue;
      if (found >= 0) {
        return InvalidArgument(
            StringPrintf("ambiguous column '%s'", name.c_str()));
      }
      found = static_cast<int>(c.index);
    }
    if (found < 0) {
      return InvalidArgument(StringPrintf(
          "unknown column '%s%s%s'", qualifier.c_str(),
          qualifier.empty() ? "" : ".", name.c_str()));
    }
    return static_cast<size_t>(found);
  }

  /// True if every column reference in `e` resolves within this scope.
  bool CanResolve(const SqlExpr& e) const {
    if (e.kind == SqlExprKind::kColumn) {
      return Resolve(e.table, e.column).ok();
    }
    for (const SqlExprPtr& c : e.children) {
      if (c != nullptr && !CanResolve(*c)) return false;
    }
    return true;
  }

 private:
  std::vector<ColumnBinding> columns_;
};

// Canonical rendering, used to match select items against GROUP BY
// expressions and to deduplicate aggregate calls.
std::string Render(const SqlExpr& e) {
  switch (e.kind) {
    case SqlExprKind::kColumn:
      return e.table.empty() ? e.column : e.table + "." + e.column;
    case SqlExprKind::kLiteral:
      return e.literal.ToString();
    case SqlExprKind::kCompare:
    case SqlExprKind::kArith:
      return "(" + Render(*e.children[0]) + e.op + Render(*e.children[1]) +
             ")";
    case SqlExprKind::kAnd:
      return "(" + Render(*e.children[0]) + " and " +
             Render(*e.children[1]) + ")";
    case SqlExprKind::kOr:
      return "(" + Render(*e.children[0]) + " or " + Render(*e.children[1]) +
             ")";
    case SqlExprKind::kNot:
      return "(not " + Render(*e.children[0]) + ")";
    case SqlExprKind::kLike:
      return "(" + Render(*e.children[0]) + (e.negated ? " not" : "") +
             " like '" + e.pattern + "')";
    case SqlExprKind::kInList: {
      std::string out = "(" + Render(*e.children[0]) +
                        (e.negated ? " not in (" : " in (");
      for (size_t i = 0; i < e.in_list.size(); ++i) {
        if (i > 0) out += ",";
        out += e.in_list[i].ToString();
      }
      return out + "))";
    }
    case SqlExprKind::kBetween:
      return "(" + Render(*e.children[0]) + " between " +
             Render(*e.children[1]) + " and " + Render(*e.children[2]) + ")";
    case SqlExprKind::kIsNull:
      return "(" + Render(*e.children[0]) +
             (e.negated ? " is not null)" : " is null)");
    case SqlExprKind::kFunc: {
      std::string out = e.func_name + "(";
      if (e.star) {
        out += "*";
      } else {
        if (e.distinct) out += "distinct ";
        out += Render(*e.children[0]);
      }
      return out + ")";
    }
  }
  return "?";
}

// Binds an AST expression against `scope`, producing an executable Expr.
// Aggregate calls are not allowed here (they are planned separately).
StatusOr<ExprPtr> Bind(const SqlExpr& e, const Scope& scope) {
  switch (e.kind) {
    case SqlExprKind::kColumn: {
      QPROG_ASSIGN_OR_RETURN(size_t idx, scope.Resolve(e.table, e.column));
      return eb::Col(idx, Render(e));
    }
    case SqlExprKind::kLiteral:
      return eb::Lit(e.literal);
    case SqlExprKind::kCompare: {
      QPROG_ASSIGN_OR_RETURN(ExprPtr l, Bind(*e.children[0], scope));
      QPROG_ASSIGN_OR_RETURN(ExprPtr r, Bind(*e.children[1], scope));
      CompareOp op;
      if (e.op == "=") {
        op = CompareOp::kEq;
      } else if (e.op == "<>") {
        op = CompareOp::kNe;
      } else if (e.op == "<") {
        op = CompareOp::kLt;
      } else if (e.op == "<=") {
        op = CompareOp::kLe;
      } else if (e.op == ">") {
        op = CompareOp::kGt;
      } else {
        op = CompareOp::kGe;
      }
      return eb::Cmp(op, std::move(l), std::move(r));
    }
    case SqlExprKind::kArith: {
      QPROG_ASSIGN_OR_RETURN(ExprPtr l, Bind(*e.children[0], scope));
      QPROG_ASSIGN_OR_RETURN(ExprPtr r, Bind(*e.children[1], scope));
      if (e.op == "+") return eb::Add(std::move(l), std::move(r));
      if (e.op == "-") return eb::Sub(std::move(l), std::move(r));
      if (e.op == "*") return eb::Mul(std::move(l), std::move(r));
      return eb::Div(std::move(l), std::move(r));
    }
    case SqlExprKind::kAnd: {
      QPROG_ASSIGN_OR_RETURN(ExprPtr l, Bind(*e.children[0], scope));
      QPROG_ASSIGN_OR_RETURN(ExprPtr r, Bind(*e.children[1], scope));
      return eb::And(std::move(l), std::move(r));
    }
    case SqlExprKind::kOr: {
      QPROG_ASSIGN_OR_RETURN(ExprPtr l, Bind(*e.children[0], scope));
      QPROG_ASSIGN_OR_RETURN(ExprPtr r, Bind(*e.children[1], scope));
      return eb::Or(std::move(l), std::move(r));
    }
    case SqlExprKind::kNot: {
      QPROG_ASSIGN_OR_RETURN(ExprPtr c, Bind(*e.children[0], scope));
      return eb::Not(std::move(c));
    }
    case SqlExprKind::kLike: {
      QPROG_ASSIGN_OR_RETURN(ExprPtr c, Bind(*e.children[0], scope));
      return e.negated ? eb::NotLike(std::move(c), e.pattern)
                       : eb::Like(std::move(c), e.pattern);
    }
    case SqlExprKind::kInList: {
      QPROG_ASSIGN_OR_RETURN(ExprPtr c, Bind(*e.children[0], scope));
      return e.negated ? eb::NotIn(std::move(c), e.in_list)
                       : eb::In(std::move(c), e.in_list);
    }
    case SqlExprKind::kBetween: {
      QPROG_ASSIGN_OR_RETURN(ExprPtr v, Bind(*e.children[0], scope));
      QPROG_ASSIGN_OR_RETURN(ExprPtr lo, Bind(*e.children[1], scope));
      QPROG_ASSIGN_OR_RETURN(ExprPtr hi, Bind(*e.children[2], scope));
      ExprPtr between = eb::Between(std::move(v), std::move(lo), std::move(hi));
      if (e.negated) between = eb::Not(std::move(between));
      return between;
    }
    case SqlExprKind::kIsNull: {
      QPROG_ASSIGN_OR_RETURN(ExprPtr c, Bind(*e.children[0], scope));
      return e.negated ? eb::IsNotNull(std::move(c)) : eb::IsNull(std::move(c));
    }
    case SqlExprKind::kFunc:
      return InvalidArgument(StringPrintf(
          "aggregate '%s' not allowed in this context", e.func_name.c_str()));
  }
  return Internal("unhandled expression kind");
}

// Flattens AND trees into conjunct pointers.
void CollectConjuncts(const SqlExpr* e, std::vector<const SqlExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == SqlExprKind::kAnd) {
    CollectConjuncts(e->children[0].get(), out);
    CollectConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

// Collects aggregate calls (kFunc) in the expression tree.
void CollectAggregates(const SqlExpr* e, std::vector<const SqlExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == SqlExprKind::kFunc) {
    out->push_back(e);
    return;  // no nested aggregates in the subset
  }
  for (const SqlExprPtr& c : e->children) CollectAggregates(c.get(), out);
}

bool ContainsAggregate(const SqlExpr* e) {
  std::vector<const SqlExpr*> aggs;
  CollectAggregates(e, &aggs);
  return !aggs.empty();
}

// Statistics-backed selectivity for a conjunct against one table; falls back
// to 1/3. Only simple column-op-literal shapes consult the histogram.
double ConjunctSelectivity(const SqlExpr& e, const Scope& table_scope,
                           const TableStats* stats) {
  if (stats == nullptr) return 1.0 / 3.0;
  if (e.kind == SqlExprKind::kCompare &&
      e.children[0]->kind == SqlExprKind::kColumn &&
      e.children[1]->kind == SqlExprKind::kLiteral) {
    auto idx = table_scope.Resolve(e.children[0]->table, e.children[0]->column);
    if (!idx.ok()) return 1.0 / 3.0;
    PredicateDesc pred;
    pred.column = idx.value();
    pred.operand = e.children[1]->literal;
    if (e.op == "=") {
      pred.op = CompareOp::kEq;
    } else if (e.op == "<>") {
      pred.op = CompareOp::kNe;
    } else if (e.op == "<") {
      pred.op = CompareOp::kLt;
    } else if (e.op == "<=") {
      pred.op = CompareOp::kLe;
    } else if (e.op == ">") {
      pred.op = CompareOp::kGt;
    } else {
      pred.op = CompareOp::kGe;
    }
    return EstimatePredicateSelectivity(*stats, pred);
  }
  if (e.kind == SqlExprKind::kBetween) return 1.0 / 4.0;
  if (e.kind == SqlExprKind::kLike || e.kind == SqlExprKind::kInList) {
    return 1.0 / 5.0;
  }
  return 1.0 / 3.0;
}

// A planned intermediate result: operator + scope + running row estimate.
struct Planned {
  OperatorPtr op;
  Scope scope;
  double est_rows = 0;
};

// Distinct count of a join column, for the containment join estimate.
uint64_t DistinctOf(const Database& db, const std::string& table,
                    const std::string& column) {
  const TableStats* stats = db.GetStats(table);
  const Table* t = db.GetTable(table);
  if (stats == nullptr || t == nullptr) return 1000;
  int idx = t->schema().FindField(column);
  if (idx < 0 || static_cast<size_t>(idx) >= stats->num_columns()) return 1000;
  return std::max<uint64_t>(1, stats->column(static_cast<size_t>(idx)).distinct);
}

}  // namespace

StatusOr<PhysicalPlan> PlanSelect(const SelectStmt& stmt, const Database& db) {
  return PlanSelect(stmt, db, PlanOptions());
}

StatusOr<PhysicalPlan> PlanSelect(const SelectStmt& stmt, const Database& db,
                                  const PlanOptions& options) {
  if (stmt.from.empty()) return InvalidArgument("FROM clause required");

  // Assemble the relation list (FROM items then JOIN items) and check
  // duplicate aliases.
  std::vector<TableRef> relations = stmt.from;
  for (const JoinClause& j : stmt.joins) relations.push_back(j.table);
  std::set<std::string> aliases;
  for (const TableRef& ref : relations) {
    if (db.GetTable(ref.table) == nullptr) {
      return InvalidArgument(
          StringPrintf("unknown table '%s'", ref.table.c_str()));
    }
    if (!aliases.insert(ref.alias).second) {
      return InvalidArgument(
          StringPrintf("duplicate table alias '%s'", ref.alias.c_str()));
    }
  }

  // Conjunct pool: WHERE plus all ON conditions.
  std::vector<const SqlExpr*> conjuncts;
  CollectConjuncts(stmt.where.get(), &conjuncts);
  for (const JoinClause& j : stmt.joins) {
    CollectConjuncts(j.on.get(), &conjuncts);
  }
  std::vector<bool> used(conjuncts.size(), false);

  // Plan each relation as a scan with its single-table conjuncts merged.
  auto plan_scan = [&](const TableRef& ref) -> StatusOr<Planned> {
    const Table* table = db.GetTable(ref.table);
    Scope table_scope;
    table_scope.AddTable(ref.alias, table->schema());
    std::vector<ExprPtr> preds;
    double selectivity = 1.0;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (used[i] || ContainsAggregate(conjuncts[i])) continue;
      if (!table_scope.CanResolve(*conjuncts[i])) continue;
      QPROG_ASSIGN_OR_RETURN(ExprPtr bound, Bind(*conjuncts[i], table_scope));
      selectivity *=
          ConjunctSelectivity(*conjuncts[i], table_scope, db.GetStats(ref.table));
      preds.push_back(std::move(bound));
      used[i] = true;
    }
    ExprPtr predicate;
    if (preds.size() == 1) {
      predicate = std::move(preds[0]);
    } else if (preds.size() > 1) {
      predicate = eb::And(std::move(preds));
    }
    auto scan = std::make_unique<SeqScan>(table, std::move(predicate));
    double est = std::max(1.0, static_cast<double>(table->num_rows()) *
                                   selectivity);
    scan->set_estimated_rows(est);
    Planned planned;
    planned.op = std::move(scan);
    planned.scope = table_scope;
    planned.est_rows = est;
    return planned;
  };

  QPROG_ASSIGN_OR_RETURN(Planned current, plan_scan(relations[0]));

  // Left-deep joins in relation order.
  for (size_t r = 1; r < relations.size(); ++r) {
    QPROG_ASSIGN_OR_RETURN(Planned next, plan_scan(relations[r]));
    // Combined scope: current's columns keep their positions, the new
    // relation's columns follow.
    Scope rebuilt;
    for (const ColumnBinding& c : current.scope.columns()) {
      rebuilt.AddTable(c.qualifier, Schema({Field(c.name, TypeId::kNull)}));
    }
    for (const ColumnBinding& c : next.scope.columns()) {
      rebuilt.AddTable(c.qualifier, Schema({Field(c.name, TypeId::kNull)}));
    }

    // Find equi-join conjuncts col(current) = col(next).
    std::vector<ExprPtr> probe_keys, build_keys;
    std::vector<ExprPtr> residuals;
    uint64_t probe_distinct = 1, build_distinct = 1;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (used[i] || ContainsAggregate(conjuncts[i])) continue;
      const SqlExpr* e = conjuncts[i];
      if (!rebuilt.CanResolve(*e)) continue;
      bool is_equi = false;
      if (e->kind == SqlExprKind::kCompare && e->op == "=" &&
          e->children[0]->kind == SqlExprKind::kColumn &&
          e->children[1]->kind == SqlExprKind::kColumn) {
        const SqlExpr* a = e->children[0].get();
        const SqlExpr* b = e->children[1].get();
        bool a_cur = current.scope.CanResolve(*a);
        bool b_cur = current.scope.CanResolve(*b);
        bool a_next = next.scope.CanResolve(*a);
        bool b_next = next.scope.CanResolve(*b);
        const SqlExpr* cur_side = nullptr;
        const SqlExpr* next_side = nullptr;
        if (a_cur && b_next && !b_cur) {
          cur_side = a;
          next_side = b;
        } else if (b_cur && a_next && !a_cur) {
          cur_side = b;
          next_side = a;
        }
        if (cur_side != nullptr) {
          QPROG_ASSIGN_OR_RETURN(ExprPtr pk, Bind(*cur_side, current.scope));
          QPROG_ASSIGN_OR_RETURN(ExprPtr bk, Bind(*next_side, next.scope));
          probe_keys.push_back(std::move(pk));
          build_keys.push_back(std::move(bk));
          probe_distinct = std::max(
              probe_distinct,
              DistinctOf(db,
                         [&] {
                           for (const TableRef& t : relations) {
                             if (t.alias == cur_side->table ||
                                 (cur_side->table.empty())) {
                               return t.table;
                             }
                           }
                           return relations[0].table;
                         }(),
                         cur_side->column));
          build_distinct = std::max(
              build_distinct, DistinctOf(db, relations[r].table,
                                         next_side->column));
          used[i] = true;
          is_equi = true;
        }
      }
      if (!is_equi) {
        // Spans both sides: becomes a join residual over the combined row.
        QPROG_ASSIGN_OR_RETURN(ExprPtr bound, Bind(*e, rebuilt));
        residuals.push_back(std::move(bound));
        used[i] = true;
      }
    }
    ExprPtr residual;
    if (residuals.size() == 1) {
      residual = std::move(residuals[0]);
    } else if (residuals.size() > 1) {
      residual = eb::And(std::move(residuals));
    }

    double est = EstimateJoinCardinality(current.est_rows, probe_distinct,
                                         next.est_rows, build_distinct);
    Planned joined;
    if (!probe_keys.empty()) {
      auto join = std::make_unique<HashJoin>(
          std::move(current.op), std::move(next.op), std::move(probe_keys),
          std::move(build_keys), JoinType::kInner, std::move(residual));
      join->set_estimated_rows(est);
      joined.op = std::move(join);
    } else {
      auto join = std::make_unique<NestedLoopsJoin>(
          std::move(current.op), std::move(next.op), std::move(residual),
          JoinType::kInner);
      join->set_estimated_rows(current.est_rows * next.est_rows);
      joined.op = std::move(join);
    }
    joined.scope = rebuilt;
    joined.est_rows = std::max(1.0, est);
    current = std::move(joined);
  }

  // Leftover non-aggregate conjuncts become a Filter above the joins.
  {
    std::vector<ExprPtr> leftovers;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (used[i] || ContainsAggregate(conjuncts[i])) continue;
      QPROG_ASSIGN_OR_RETURN(ExprPtr bound, Bind(*conjuncts[i], current.scope));
      leftovers.push_back(std::move(bound));
      used[i] = true;
    }
    if (!leftovers.empty()) {
      ExprPtr pred = leftovers.size() == 1 ? std::move(leftovers[0])
                                           : eb::And(std::move(leftovers));
      current.op =
          std::make_unique<Filter>(std::move(current.op), std::move(pred));
      current.est_rows = std::max(1.0, current.est_rows / 3.0);
    }
  }

  // ---------------- aggregation -----------------------------------------
  bool star_select = stmt.items.size() == 1 && stmt.items[0].expr == nullptr;
  std::vector<const SqlExpr*> select_aggs;
  for (const SelectItem& item : stmt.items) {
    CollectAggregates(item.expr.get(), &select_aggs);
  }
  std::vector<const SqlExpr*> having_aggs;
  CollectAggregates(stmt.having.get(), &having_aggs);
  bool aggregated = !stmt.group_by.empty() || !select_aggs.empty() ||
                    !having_aggs.empty();
  if (aggregated && star_select) {
    return InvalidArgument("SELECT * cannot be combined with aggregation");
  }

  Scope output_scope;  // scope of the operator feeding projection
  if (aggregated) {
    // Deduplicated aggregate list, keyed by canonical rendering.
    std::vector<const SqlExpr*> all_aggs = select_aggs;
    all_aggs.insert(all_aggs.end(), having_aggs.begin(), having_aggs.end());
    std::vector<const SqlExpr*> unique_aggs;
    std::map<std::string, size_t> agg_index;
    for (const SqlExpr* a : all_aggs) {
      std::string key = Render(*a);
      if (agg_index.count(key) > 0) continue;
      agg_index[key] = unique_aggs.size();
      unique_aggs.push_back(a);
    }

    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    std::vector<std::string> group_renderings;
    for (const SqlExprPtr& g : stmt.group_by) {
      QPROG_ASSIGN_OR_RETURN(ExprPtr bound, Bind(*g, current.scope));
      group_exprs.push_back(std::move(bound));
      group_renderings.push_back(Render(*g));
      group_names.push_back(g->kind == SqlExprKind::kColumn ? g->column
                                                            : Render(*g));
    }

    std::vector<AggregateDesc> descs;
    std::vector<uint64_t> group_distincts;
    for (const SqlExpr* a : unique_aggs) {
      AggFunc func;
      if (a->func_name == "count") {
        func = a->distinct ? AggFunc::kCountDistinct : AggFunc::kCount;
      } else if (a->func_name == "sum") {
        func = AggFunc::kSum;
      } else if (a->func_name == "avg") {
        func = AggFunc::kAvg;
      } else if (a->func_name == "min") {
        func = AggFunc::kMin;
      } else {
        func = AggFunc::kMax;
      }
      ExprPtr arg;
      if (!a->star) {
        QPROG_ASSIGN_OR_RETURN(arg, Bind(*a->children[0], current.scope));
      }
      descs.emplace_back(func, std::move(arg), Render(*a));
    }

    double est_groups =
        EstimateGroupCount(current.est_rows,
                           std::vector<uint64_t>(stmt.group_by.size(), 100));
    bool decomposed = false;
    if (options.partitions > 1 && !group_exprs.empty() &&
        PartialAggregate::Decomposable(descs) &&
        current.op->kind() == OpKind::kSeqScan) {
      // Partitioned pipeline (exec/exchange.h): N range-partitioned
      // scan → partial-aggregate producers, an Exchange hashing on the
      // group key, and a FinalAggregate merging partial states. Restricted
      // to the shapes where decomposition is semantics-preserving: a
      // single-table input (the WHERE conjuncts already merged into the
      // scan) with at least one group key and no COUNT(DISTINCT).
      const size_t parts = options.partitions;
      auto* scan = static_cast<SeqScan*>(current.op.get());
      const Table* table = scan->table();
      const Expr* pred = scan->predicate();
      const uint64_t n = table->num_rows();
      std::vector<OperatorPtr> producers;
      producers.reserve(parts);
      for (size_t p = 0; p < parts; ++p) {
        auto part_scan = std::make_unique<SeqScan>(
            table, pred != nullptr ? pred->Clone() : nullptr, n * p / parts,
            n * (p + 1) / parts);
        std::vector<ExprPtr> part_groups;
        part_groups.reserve(group_exprs.size());
        for (const ExprPtr& g : group_exprs) {
          part_groups.push_back(g->Clone());
        }
        std::vector<AggregateDesc> part_descs;
        part_descs.reserve(descs.size());
        for (const AggregateDesc& d : descs) {
          part_descs.emplace_back(
              d.func, d.arg != nullptr ? d.arg->Clone() : nullptr,
              d.output_name);
        }
        producers.push_back(std::make_unique<PartialAggregate>(
            std::move(part_scan), std::move(part_groups), group_names,
            std::move(part_descs)));
      }
      std::vector<size_t> key_cols(group_exprs.size());
      for (size_t g = 0; g < key_cols.size(); ++g) key_cols[g] = g;
      auto exchange = std::make_unique<Exchange>(
          std::move(producers), std::move(key_cols), parts);
      auto final_agg = std::make_unique<FinalAggregate>(
          std::move(exchange), group_exprs.size(), group_names,
          std::move(descs));
      final_agg->set_estimated_rows(est_groups);
      current.op = std::move(final_agg);
      decomposed = true;
    }
    if (!decomposed) {
      auto agg = std::make_unique<HashAggregate>(
          std::move(current.op), std::move(group_exprs), group_names,
          std::move(descs));
      agg->set_estimated_rows(est_groups);
      current.op = std::move(agg);
    }
    current.est_rows = est_groups;

    // Post-aggregation scope: group columns, then aggregates. Group columns
    // are addressable by their original names AND renderings; aggregates by
    // rendering.
    Scope post;
    for (const std::string& name : group_names) {
      post.AddTable("", Schema({Field(name, TypeId::kNull)}));
    }
    for (const SqlExpr* a : unique_aggs) {
      post.AddTable("", Schema({Field(Render(*a), TypeId::kNull)}));
    }
    current.scope = post;

    // Rewrites an AST expression over the post-aggregation row: group
    // expressions and aggregate calls become column refs.
    std::function<StatusOr<ExprPtr>(const SqlExpr&)> rewrite =
        [&](const SqlExpr& e) -> StatusOr<ExprPtr> {
      std::string rendering = Render(e);
      for (size_t g = 0; g < group_renderings.size(); ++g) {
        if (rendering == group_renderings[g]) {
          return eb::Col(g, group_names[g]);
        }
      }
      if (e.kind == SqlExprKind::kFunc) {
        auto it = agg_index.find(rendering);
        if (it == agg_index.end()) {
          return InvalidArgument("unplanned aggregate " + rendering);
        }
        return eb::Col(group_renderings.size() + it->second, rendering);
      }
      // Recurse into arithmetic/comparison over groups and aggregates.
      switch (e.kind) {
        case SqlExprKind::kLiteral:
          return eb::Lit(e.literal);
        case SqlExprKind::kArith: {
          QPROG_ASSIGN_OR_RETURN(ExprPtr l, rewrite(*e.children[0]));
          QPROG_ASSIGN_OR_RETURN(ExprPtr r, rewrite(*e.children[1]));
          if (e.op == "+") return eb::Add(std::move(l), std::move(r));
          if (e.op == "-") return eb::Sub(std::move(l), std::move(r));
          if (e.op == "*") return eb::Mul(std::move(l), std::move(r));
          return eb::Div(std::move(l), std::move(r));
        }
        case SqlExprKind::kCompare: {
          QPROG_ASSIGN_OR_RETURN(ExprPtr l, rewrite(*e.children[0]));
          QPROG_ASSIGN_OR_RETURN(ExprPtr r, rewrite(*e.children[1]));
          CompareOp op = e.op == "=" ? CompareOp::kEq
                         : e.op == "<>" ? CompareOp::kNe
                         : e.op == "<" ? CompareOp::kLt
                         : e.op == "<=" ? CompareOp::kLe
                         : e.op == ">" ? CompareOp::kGt
                                       : CompareOp::kGe;
          return eb::Cmp(op, std::move(l), std::move(r));
        }
        case SqlExprKind::kAnd: {
          QPROG_ASSIGN_OR_RETURN(ExprPtr l, rewrite(*e.children[0]));
          QPROG_ASSIGN_OR_RETURN(ExprPtr r, rewrite(*e.children[1]));
          return eb::And(std::move(l), std::move(r));
        }
        case SqlExprKind::kOr: {
          QPROG_ASSIGN_OR_RETURN(ExprPtr l, rewrite(*e.children[0]));
          QPROG_ASSIGN_OR_RETURN(ExprPtr r, rewrite(*e.children[1]));
          return eb::Or(std::move(l), std::move(r));
        }
        case SqlExprKind::kColumn:
          return InvalidArgument(
              StringPrintf("column '%s' must appear in GROUP BY",
                           e.column.c_str()));
        default:
          return InvalidArgument(
              "unsupported expression over aggregated output: " + rendering);
      }
    };

    if (stmt.having != nullptr) {
      QPROG_ASSIGN_OR_RETURN(ExprPtr having, rewrite(*stmt.having));
      current.op =
          std::make_unique<Filter>(std::move(current.op), std::move(having));
    }

    // Projection of the select list over the post-aggregation row.
    std::vector<ExprPtr> projections;
    std::vector<std::string> names;
    for (const SelectItem& item : stmt.items) {
      QPROG_ASSIGN_OR_RETURN(ExprPtr bound, rewrite(*item.expr));
      names.push_back(!item.alias.empty() ? item.alias : Render(*item.expr));
      projections.push_back(std::move(bound));
    }
    current.op = std::make_unique<Project>(std::move(current.op),
                                           std::move(projections), names);
    Scope projected;
    for (const std::string& name : names) {
      projected.AddTable("", Schema({Field(name, TypeId::kNull)}));
    }
    current.scope = projected;
  } else if (!star_select) {
    std::vector<ExprPtr> projections;
    std::vector<std::string> names;
    for (const SelectItem& item : stmt.items) {
      QPROG_ASSIGN_OR_RETURN(ExprPtr bound, Bind(*item.expr, current.scope));
      names.push_back(!item.alias.empty()
                          ? item.alias
                          : (item.expr->kind == SqlExprKind::kColumn
                                 ? item.expr->column
                                 : Render(*item.expr)));
      projections.push_back(std::move(bound));
    }
    current.op = std::make_unique<Project>(std::move(current.op),
                                           std::move(projections), names);
    Scope projected;
    for (const std::string& name : names) {
      projected.AddTable("", Schema({Field(name, TypeId::kNull)}));
    }
    current.scope = projected;
  }

  // ---------------- ORDER BY / LIMIT ------------------------------------
  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    const Schema& out_schema = current.op->output_schema();
    for (const OrderItem& item : stmt.order_by) {
      ExprPtr key;
      if (item.expr->kind == SqlExprKind::kLiteral &&
          item.expr->literal.type() == TypeId::kInt64) {
        int64_t ordinal = item.expr->literal.int64_value();
        if (ordinal < 1 ||
            ordinal > static_cast<int64_t>(out_schema.num_fields())) {
          return InvalidArgument("ORDER BY ordinal out of range");
        }
        key = eb::Col(static_cast<size_t>(ordinal - 1));
      } else if (item.expr->kind == SqlExprKind::kColumn) {
        int idx = out_schema.FindField(item.expr->column);
        if (idx < 0) {
          QPROG_ASSIGN_OR_RETURN(key, Bind(*item.expr, current.scope));
        } else {
          key = eb::Col(static_cast<size_t>(idx), item.expr->column);
        }
      } else {
        int idx = out_schema.FindField(Render(*item.expr));
        if (idx < 0) {
          return InvalidArgument("ORDER BY expression must name an output "
                                 "column: " +
                                 Render(*item.expr));
        }
        key = eb::Col(static_cast<size_t>(idx));
      }
      keys.emplace_back(std::move(key), item.descending);
    }
    auto sort = std::make_unique<Sort>(std::move(current.op), std::move(keys));
    sort->set_estimated_rows(current.est_rows);
    current.op = std::move(sort);
  }
  if (stmt.limit.has_value()) {
    current.op = std::make_unique<Limit>(std::move(current.op), *stmt.limit);
  }

  return PhysicalPlan(std::move(current.op));
}

StatusOr<PhysicalPlan> PlanSql(const std::string& query, const Database& db) {
  QPROG_ASSIGN_OR_RETURN(SelectStmt stmt, Parse(query));
  return PlanSelect(stmt, db);
}

StatusOr<PhysicalPlan> PlanSql(const std::string& query, const Database& db,
                               const PlanOptions& options) {
  QPROG_ASSIGN_OR_RETURN(SelectStmt stmt, Parse(query));
  return PlanSelect(stmt, db, options);
}

StatusOr<std::vector<Row>> ExecuteSql(const std::string& query,
                                      const Database& db) {
  QPROG_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanSql(query, db));
  return CollectRows(&plan);
}

}  // namespace sql
}  // namespace qprog
