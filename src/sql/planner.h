// Naive planner: binds a parsed SelectStmt against the catalog and produces
// an instrumented physical plan.
//
// Planning strategy (deliberately simple, in the spirit of the paper's
// discussion that optimizer estimates are unreliable anyway):
//  * single-table WHERE conjuncts merge into the scans;
//  * relations join left-deep in FROM order via hash joins on the equi-join
//    conjuncts found in WHERE/ON (falling back to nested-loops cross joins
//    with residual predicates when no equi-key connects);
//  * aggregates plan as HashAggregate; HAVING becomes a Filter above it;
//  * ORDER BY becomes a Sort over output columns; LIMIT a Limit node;
//  * scan/aggregate cardinality estimates come from the stored histogram
//    statistics (feeding the dne estimator's driver totals).

#ifndef QPROG_SQL_PLANNER_H_
#define QPROG_SQL_PLANNER_H_

#include <string>

#include "common/statusor.h"
#include "exec/plan.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace qprog {
namespace sql {

/// Plan-construction knobs (distinct from the execution environment, which
/// rides on ExecContext / ExecutionConfig).
struct PlanOptions {
  /// Degree of pipeline parallelism. With partitions > 1, a decomposable
  /// single-table GROUP BY aggregation plans as N range-partitioned
  /// scan → partial-aggregate producers feeding an Exchange (hash on the
  /// group key) and a FinalAggregate (exec/exchange.h); everything else
  /// falls back to the serial shape. 0 or 1 = serial plans.
  size_t partitions = 0;
};

/// Plans a parsed statement. The database must outlive the plan.
StatusOr<PhysicalPlan> PlanSelect(const SelectStmt& stmt, const Database& db);
StatusOr<PhysicalPlan> PlanSelect(const SelectStmt& stmt, const Database& db,
                                  const PlanOptions& options);

/// Parse + plan in one call.
StatusOr<PhysicalPlan> PlanSql(const std::string& query, const Database& db);
StatusOr<PhysicalPlan> PlanSql(const std::string& query, const Database& db,
                               const PlanOptions& options);

/// Parse + plan + execute, returning the result rows.
StatusOr<std::vector<Row>> ExecuteSql(const std::string& query,
                                      const Database& db);

}  // namespace sql
}  // namespace qprog

#endif  // QPROG_SQL_PLANNER_H_
