// SqlSession: one client's SQL entry point over a shared database — the
// seam between the SQL layer (parse/plan) and the execution environment
// (guard, spill, pool, telemetry), and the layer at which a *per-query*
// estimator choice finally reaches CreateEstimator: the session carries
// default estimator specs ("hybrid:2.5", "window:32", ...) and every
// ExecuteMonitored call may override them, with malformed specs surfacing
// as kInvalidArgument before any execution starts.
//
// A session is single-threaded (one query at a time, like a client
// connection); many sessions over one Database are safe because execution
// never mutates the catalog. Cross-session coordination — shared memory
// pools, admission, quotas — lives above this layer in server/QueryServer,
// which owns one SqlSession per connection and wires per-session guards and
// spill managers into these options.
//
// When a WorkloadStatsRegistry is attached, every run (monitored or not)
// records its template fingerprint and resource figures, growing the priors
// the admission controller predicts from. The wall-clock figure is the only
// nondeterministic field; admission decisions never read it (it feeds the
// predicted-wait *hint* only), so a fixed seed still yields fixed decisions.

#ifndef QPROG_SQL_SESSION_H_
#define QPROG_SQL_SESSION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/monitor.h"
#include "obs/cross_run_registry.h"
#include "obs/workload_stats.h"
#include "sql/planner.h"
#include "storage/catalog.h"

namespace qprog {
namespace sql {

/// Session-wide configuration: default estimator specs plus the borrowed
/// execution environment (all pointers optional and caller-owned). The
/// engine knobs — worker_pool, batch_size, partitions — live on the shared
/// ExecutionConfig base (exec/execution_config.h): `partitions > 1` makes
/// the planner build partitioned scan → partial-agg → Exchange → final-agg
/// pipelines for decomposable aggregations (sql/planner.h).
struct SessionOptions : ExecutionConfig {
  /// Estimator specs for monitored runs without a per-query override.
  /// CreateEstimator syntax — parameterized specs like "hybrid:2.5" and
  /// "window:32" are accepted.
  std::vector<std::string> estimators = {"dne", "safe"};
  /// Checkpoint every this many units of work (getnext calls).
  uint64_t checkpoint_interval = 1000;

  QueryGuard* guard = nullptr;
  FaultInjector* fault_injector = nullptr;
  SpillManager* spill_manager = nullptr;
  TelemetryCollector* telemetry = nullptr;
  MetricsRegistry* metrics_registry = nullptr;
  /// Per-template priors sink; shared across sessions (thread-safe).
  WorkloadStatsRegistry* workload_stats = nullptr;
  /// Cross-run estimator registry (obs/cross_run_registry.h); shared across
  /// sessions (thread-safe). When attached, every monitored run records a
  /// CrossRunObservation, plans are re-seeded from observed cardinality
  /// priors before execution (unless cross_run_feedback is off), and an
  /// "auto" estimator spec resolves to the template's historically-best
  /// fixed estimator.
  CrossRunRegistry* cross_run = nullptr;
  /// Re-seed estimated_rows from cross-run priors on plan construction.
  bool cross_run_feedback = true;
  /// Completed runs a template needs before its priors are trusted — the k
  /// of both prior feedback and auto-selection warmth.
  uint64_t cross_run_min_runs = 3;
  /// Wall-clock ETA model for monitored runs; each checkpoint then carries
  /// a calibrated [eta_lo, eta, eta_hi] band. Like the rest of the
  /// environment, borrowed — and single-threaded, so one model serves one
  /// session (the server wires a fresh model per ticket).
  EtaModel* eta_model = nullptr;
};

/// Per-query overrides for one ExecuteMonitored call.
struct QueryOptions {
  /// Estimator specs for this query; empty = the session's defaults.
  std::vector<std::string> estimators;
  /// 0 = the session's default interval.
  uint64_t checkpoint_interval = 0;
  /// Forwarded to MonitorOptions::checkpoint_listener.
  std::function<void(const Checkpoint&)> checkpoint_listener;
  /// Pre-resolved pick for "auto" estimator specs (an estimator spec like
  /// "pmax"). The server resolves the selection once at Submit time and
  /// passes it here, so the fleet display and the run agree even while
  /// concurrent runs update the registry. Empty = the session resolves the
  /// selection itself at execution time.
  std::string auto_pick;
};

class SqlSession {
 public:
  /// The database and everything in `options` are borrowed and must outlive
  /// the session.
  explicit SqlSession(const Database* db,
                      SessionOptions options = SessionOptions());

  SqlSession(const SqlSession&) = delete;
  SqlSession& operator=(const SqlSession&) = delete;

  /// Parse + plan + execute under the session's guard/spill environment,
  /// returning the result rows (no progress monitoring).
  StatusOr<std::vector<Row>> Execute(const std::string& query);

  /// Parse + plan + monitored run: resolves the estimator specs (per-query
  /// override first, else the session defaults) through CreateEstimator —
  /// kInvalidArgument on a malformed spec, before execution — then runs
  /// under a ProgressMonitor. A guardrail abort is NOT an error return: the
  /// report carries the partial checkpoints and the aborting status, exactly
  /// as ProgressMonitor::Run reports it.
  StatusOr<ProgressReport> ExecuteMonitored(
      const std::string& query, const QueryOptions& q = QueryOptions());

  const SessionOptions& options() const { return options_; }
  const Database* db() const { return db_; }
  /// Queries that reached execution (parse/plan/spec failures excluded).
  uint64_t queries_run() const { return queries_run_; }

 private:
  void RecordWorkload(uint64_t fingerprint, bool completed, uint64_t work,
                      uint64_t spill_work, uint64_t peak_buffered_rows,
                      uint64_t root_rows, uint64_t wall_ns);

  const Database* db_;
  SessionOptions options_;
  uint64_t queries_run_ = 0;
};

}  // namespace sql
}  // namespace qprog

#endif  // QPROG_SQL_SESSION_H_
