// SQL lexer for the subset the qprog frontend supports.

#ifndef QPROG_SQL_LEXER_H_
#define QPROG_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/statusor.h"

namespace qprog {
namespace sql {

enum class TokenType {
  kIdentifier,  // foo, lineitem  (keywords are identifiers matched later)
  kInteger,     // 42
  kFloat,       // 3.14
  kString,      // 'text'
  kSymbol,      // = <> <= >= < > + - * / ( ) , . ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // identifiers lower-cased; symbols verbatim
  size_t position = 0;

  bool Is(TokenType t) const { return type == t; }
  /// Case-insensitive keyword/symbol match.
  bool Is(const char* s) const;
};

/// Tokenizes `input`. Returns InvalidArgument on unterminated strings or
/// unexpected characters. The final token is always kEnd.
StatusOr<std::vector<Token>> Lex(const std::string& input);

}  // namespace sql
}  // namespace qprog

#endif  // QPROG_SQL_LEXER_H_
