#include "sql/fingerprint.h"

#include <vector>

#include "sql/lexer.h"

namespace qprog {
namespace sql {

namespace {

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= static_cast<uint64_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

StatusOr<std::string> QueryTemplate(const std::string& query) {
  StatusOr<std::vector<Token>> tokens = Lex(query);
  if (!tokens.ok()) return tokens.status();
  std::string out;
  out.reserve(query.size());
  for (const Token& tok : tokens.value()) {
    if (tok.Is(TokenType::kEnd)) break;
    if (!out.empty()) out.push_back(' ');
    switch (tok.type) {
      case TokenType::kInteger:
      case TokenType::kFloat:
      case TokenType::kString:
        out.push_back('?');
        break;
      default:
        out.append(tok.text);
        break;
    }
  }
  return out;
}

uint64_t TemplateFingerprint(const std::string& query) {
  StatusOr<std::string> tmpl = QueryTemplate(query);
  return Fnv1a64(tmpl.ok() ? tmpl.value() : query);
}

}  // namespace sql
}  // namespace qprog
