// Recursive-descent parser for the SQL subset:
//
//   SELECT <expr [AS alias]>[, ...] | *
//   FROM <table [alias]>[, ...] [JOIN <table [alias]> ON <cond>]...
//   [WHERE <cond>] [GROUP BY <expr>[, ...]] [HAVING <cond>]
//   [ORDER BY <expr> [ASC|DESC][, ...]] [LIMIT <n>]
//
// Expressions: comparisons, arithmetic, AND/OR/NOT, [NOT] LIKE, [NOT] IN
// (literal list), BETWEEN, IS [NOT] NULL, DATE 'YYYY-MM-DD' literals, and
// the aggregate functions COUNT([DISTINCT] x | *), SUM, AVG, MIN, MAX.

#ifndef QPROG_SQL_PARSER_H_
#define QPROG_SQL_PARSER_H_

#include <string>

#include "common/statusor.h"
#include "sql/ast.h"

namespace qprog {
namespace sql {

/// Parses one SELECT statement (optionally ';'-terminated).
StatusOr<SelectStmt> Parse(const std::string& input);

}  // namespace sql
}  // namespace qprog

#endif  // QPROG_SQL_PARSER_H_
