#include "sql/session.h"

#include <memory>
#include <utility>

#include "common/macros.h"
#include "obs/telemetry.h"
#include "sql/fingerprint.h"

namespace qprog {
namespace sql {

SqlSession::SqlSession(const Database* db, SessionOptions options)
    : db_(db), options_(std::move(options)) {
  QPROG_CHECK(db_ != nullptr);
  QPROG_CHECK(options_.checkpoint_interval > 0);
}

void SqlSession::RecordWorkload(uint64_t fingerprint, bool completed,
                                uint64_t work, uint64_t spill_work,
                                uint64_t peak_buffered_rows,
                                uint64_t root_rows, uint64_t wall_ns) {
  if (options_.workload_stats == nullptr) return;
  WorkloadObservation obs;
  obs.completed = completed;
  obs.work = work;
  obs.spill_work = spill_work;
  obs.peak_buffered_rows = peak_buffered_rows;
  obs.root_rows = root_rows;
  obs.wall_ns = wall_ns;
  options_.workload_stats->Record(fingerprint, obs);
}

StatusOr<std::vector<Row>> SqlSession::Execute(const std::string& query) {
  PlanOptions popts;
  popts.partitions = options_.partitions;
  QPROG_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanSql(query, *db_, popts));
  ExecContext ctx;
  ctx.set_guard(options_.guard);
  ctx.set_fault_injector(options_.fault_injector);
  ctx.set_spill_manager(options_.spill_manager);
  ctx.set_worker_pool(options_.worker_pool);
  ctx.set_telemetry(options_.telemetry);
  if (options_.fault_injector != nullptr) options_.fault_injector->Reset();
  ++queries_run_;
  uint64_t start_ns = MonotonicNanos();
  exec::DriveOptions dopts;
  dopts.ctx = &ctx;
  dopts.batch_size = options_.batch_size;
  dopts.collect_rows = true;
  exec::DriveResult result = exec::Drive(&plan, dopts);
  StatusOr<std::vector<Row>> rows =
      result.ok() ? StatusOr<std::vector<Row>>(std::move(result.rows))
                  : StatusOr<std::vector<Row>>(result.status);
  RecordWorkload(TemplateFingerprint(query), rows.ok(), ctx.work(),
                 ctx.total_spill_work(), ctx.peak_buffered_rows(),
                 rows.ok() ? rows.value().size() : 0,
                 MonotonicNanos() - start_ns);
  return rows;
}

StatusOr<ProgressReport> SqlSession::ExecuteMonitored(const std::string& query,
                                                      const QueryOptions& q) {
  PlanOptions popts;
  popts.partitions = options_.partitions;
  QPROG_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanSql(query, *db_, popts));
  const uint64_t fingerprint = TemplateFingerprint(query);
  // Cross-run prior feedback: re-seed the plan's estimated_rows from the
  // template's observed cardinalities before any estimator sees the plan.
  // Guarded inside ApplyPriors (plan-signature match, static-bound clamp);
  // rejected priors leave a metrics breadcrumb instead of touching the plan.
  if (options_.cross_run != nullptr && options_.cross_run_feedback) {
    CrossRunPriorReport priors = options_.cross_run->ApplyPriors(
        fingerprint, &plan, options_.cross_run_min_runs);
    if (options_.metrics_registry != nullptr) {
      MetricsRegistry* m = options_.metrics_registry;
      if (priors.nodes_reseeded > 0) {
        m->IncrementCounter("cross_run.nodes_reseeded",
                            static_cast<uint64_t>(priors.nodes_reseeded));
      }
      if (priors.priors_rejected > 0) {
        m->IncrementCounter("cross_run.priors_rejected",
                            static_cast<uint64_t>(priors.priors_rejected));
      }
      if (priors.signature_mismatch) {
        m->IncrementCounter("cross_run.signature_mismatch");
      }
    }
  }
  // Resolve estimator specs before touching the plan: a malformed per-query
  // spec ("hybrid:nope") must fail the query, not crash the session. A bare
  // "auto" spec resolves here: the server's Submit-time pick wins when
  // provided; otherwise the registry selects (deterministically, given its
  // state), falling back to dne_bounded for cold templates.
  std::vector<std::string> specs =
      q.estimators.empty() ? options_.estimators : q.estimators;
  for (std::string& spec : specs) {
    if (spec != "auto") continue;
    if (!q.auto_pick.empty()) {
      spec = "auto:" + q.auto_pick;
    } else if (options_.cross_run != nullptr) {
      spec = "auto:" + options_.cross_run->SelectEstimator(
                           fingerprint, options_.cross_run_min_runs);
    }
    // With no registry, bare "auto" stays — CreateEstimator wraps the
    // dne_bounded cold fallback.
  }
  std::vector<std::unique_ptr<ProgressEstimator>> estimators;
  estimators.reserve(specs.size());
  for (const std::string& spec : specs) {
    QPROG_ASSIGN_OR_RETURN(std::unique_ptr<ProgressEstimator> e,
                           CreateEstimator(spec));
    estimators.push_back(std::move(e));
  }
  MonitorOptions mopts;
  static_cast<ExecutionConfig&>(mopts) = options_;  // engine-knob spine
  mopts.guard = options_.guard;
  mopts.fault_injector = options_.fault_injector;
  mopts.spill_manager = options_.spill_manager;
  mopts.telemetry = options_.telemetry;
  mopts.metrics_registry = options_.metrics_registry;
  mopts.eta_model = options_.eta_model;
  mopts.checkpoint_listener = q.checkpoint_listener;
  ProgressMonitor monitor(&plan, std::move(estimators), std::move(mopts));
  uint64_t interval = q.checkpoint_interval > 0 ? q.checkpoint_interval
                                                : options_.checkpoint_interval;
  ++queries_run_;
  uint64_t start_ns = MonotonicNanos();
  ProgressReport report = monitor.Run(interval);
  uint64_t wall_ns = MonotonicNanos() - start_ns;
  RecordWorkload(fingerprint, report.completed(), report.total_work,
                 report.spill_work, report.peak_buffered_rows,
                 report.root_rows, wall_ns);
  if (options_.cross_run != nullptr) {
    // Recording is best-effort: a log I/O failure must not fail the query —
    // the report is already in hand. The error is surfaced as a breadcrumb.
    Status recorded = options_.cross_run->RecordRun(
        BuildCrossRunObservation(fingerprint, report, wall_ns));
    if (!recorded.ok() && options_.metrics_registry != nullptr) {
      options_.metrics_registry->IncrementCounter("cross_run.record_errors");
    }
  }
  return report;
}

}  // namespace sql
}  // namespace qprog
