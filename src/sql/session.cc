#include "sql/session.h"

#include <memory>
#include <utility>

#include "common/macros.h"
#include "obs/telemetry.h"
#include "sql/fingerprint.h"

namespace qprog {
namespace sql {

SqlSession::SqlSession(const Database* db, SessionOptions options)
    : db_(db), options_(std::move(options)) {
  QPROG_CHECK(db_ != nullptr);
  QPROG_CHECK(options_.checkpoint_interval > 0);
}

void SqlSession::RecordWorkload(uint64_t fingerprint, bool completed,
                                uint64_t work, uint64_t spill_work,
                                uint64_t peak_buffered_rows,
                                uint64_t root_rows, uint64_t wall_ns) {
  if (options_.workload_stats == nullptr) return;
  WorkloadObservation obs;
  obs.completed = completed;
  obs.work = work;
  obs.spill_work = spill_work;
  obs.peak_buffered_rows = peak_buffered_rows;
  obs.root_rows = root_rows;
  obs.wall_ns = wall_ns;
  options_.workload_stats->Record(fingerprint, obs);
}

StatusOr<std::vector<Row>> SqlSession::Execute(const std::string& query) {
  QPROG_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanSql(query, *db_));
  ExecContext ctx;
  ctx.set_guard(options_.guard);
  ctx.set_fault_injector(options_.fault_injector);
  ctx.set_spill_manager(options_.spill_manager);
  ctx.set_worker_pool(options_.worker_pool);
  ctx.set_telemetry(options_.telemetry);
  if (options_.fault_injector != nullptr) options_.fault_injector->Reset();
  ++queries_run_;
  uint64_t start_ns = MonotonicNanos();
  StatusOr<std::vector<Row>> rows = TryCollectRows(&plan, &ctx);
  RecordWorkload(TemplateFingerprint(query), rows.ok(), ctx.work(),
                 ctx.total_spill_work(), ctx.peak_buffered_rows(),
                 rows.ok() ? rows.value().size() : 0,
                 MonotonicNanos() - start_ns);
  return rows;
}

StatusOr<ProgressReport> SqlSession::ExecuteMonitored(const std::string& query,
                                                      const QueryOptions& q) {
  QPROG_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanSql(query, *db_));
  // Resolve estimator specs before touching the plan: a malformed per-query
  // spec ("hybrid:nope") must fail the query, not crash the session.
  const std::vector<std::string>& specs =
      q.estimators.empty() ? options_.estimators : q.estimators;
  std::vector<std::unique_ptr<ProgressEstimator>> estimators;
  estimators.reserve(specs.size());
  for (const std::string& spec : specs) {
    QPROG_ASSIGN_OR_RETURN(std::unique_ptr<ProgressEstimator> e,
                           CreateEstimator(spec));
    estimators.push_back(std::move(e));
  }
  MonitorOptions mopts;
  mopts.guard = options_.guard;
  mopts.fault_injector = options_.fault_injector;
  mopts.spill_manager = options_.spill_manager;
  mopts.worker_pool = options_.worker_pool;
  mopts.telemetry = options_.telemetry;
  mopts.metrics_registry = options_.metrics_registry;
  mopts.eta_model = options_.eta_model;
  mopts.checkpoint_listener = q.checkpoint_listener;
  ProgressMonitor monitor(&plan, std::move(estimators), std::move(mopts));
  uint64_t interval = q.checkpoint_interval > 0 ? q.checkpoint_interval
                                                : options_.checkpoint_interval;
  ++queries_run_;
  uint64_t start_ns = MonotonicNanos();
  ProgressReport report = monitor.Run(interval);
  RecordWorkload(TemplateFingerprint(query), report.completed(),
                 report.total_work, report.spill_work,
                 report.peak_buffered_rows, report.root_rows,
                 MonotonicNanos() - start_ns);
  return report;
}

}  // namespace sql
}  // namespace qprog
