#include "stats/table_stats.h"

#include <unordered_set>

#include "common/random.h"
#include "storage/table.h"

namespace qprog {

std::unique_ptr<TableStats> HistogramStatisticsGenerator::Generate(
    const Table& table) {
  auto stats = std::make_unique<TableStats>();
  stats->set_row_count(table.num_rows());
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    ColumnStats cs;
    cs.name = schema.field(c).name;
    Histogram h = Histogram::Build(table, c, buckets_per_column_);
    cs.null_count = h.null_rows();
    cs.distinct = h.TotalDistinct();
    if (h.num_buckets() > 0) {
      cs.min = h.bucket(0).lower;
      cs.max = h.bucket(h.num_buckets() - 1).upper;
    }
    cs.histogram = std::move(h);
    stats->AddColumn(std::move(cs));
  }
  return stats;
}

std::unique_ptr<TableStats> SampleStatisticsGenerator::Generate(
    const Table& table) {
  auto stats = std::make_unique<TableStats>();
  stats->set_row_count(table.num_rows());
  Rng rng(seed_);
  std::vector<Row> reservoir;
  reservoir.reserve(sample_size_);
  for (uint64_t i = 0; i < table.num_rows(); ++i) {
    if (reservoir.size() < sample_size_) {
      reservoir.push_back(table.row(i));
    } else {
      uint64_t j = rng.Uniform(i + 1);
      if (j < sample_size_) reservoir[j] = table.row(i);
    }
  }
  stats->set_sample(std::move(reservoir));
  // Column summaries (distinct/min/max) still come from a full pass so the
  // sample generator remains usable by the cardinality estimator.
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    ColumnStats cs;
    cs.name = schema.field(c).name;
    std::unordered_set<size_t> hashes;
    for (uint64_t i = 0; i < table.num_rows(); ++i) {
      const Value& v = table.at(i, c);
      if (v.is_null()) {
        ++cs.null_count;
        continue;
      }
      hashes.insert(v.Hash());
      if (cs.min.is_null() || v.Compare(cs.min) < 0) cs.min = v;
      if (cs.max.is_null() || v.Compare(cs.max) > 0) cs.max = v;
    }
    cs.distinct = hashes.size();
    stats->AddColumn(std::move(cs));
  }
  return stats;
}

}  // namespace qprog
