// Equi-depth single-column histogram — the canonical "lossy single-relation
// statistic" of the paper (Section 2.3). Buckets hold ~equal row counts;
// inside a bucket the distribution is assumed uniform, which is exactly the
// information loss the paper's lower-bound argument exploits.

#ifndef QPROG_STATS_HISTOGRAM_H_
#define QPROG_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/value.h"

namespace qprog {

class Table;

/// Equi-depth histogram over the non-NULL values of one column. Supports
/// numeric columns (BIGINT/DOUBLE/DATE) and strings (ordered lexically).
class Histogram {
 public:
  struct Bucket {
    Value lower;          // inclusive
    Value upper;          // inclusive
    uint64_t count = 0;   // rows in bucket
    uint64_t distinct = 0;  // distinct values in bucket
  };

  Histogram() = default;

  /// Builds an equi-depth histogram with at most `num_buckets` buckets from
  /// the given column. Rows with NULL in the column are tallied separately.
  static Histogram Build(const Table& table, size_t column, size_t num_buckets);

  uint64_t total_rows() const { return total_rows_; }
  uint64_t null_rows() const { return null_rows_; }
  size_t num_buckets() const { return buckets_.size(); }
  const Bucket& bucket(size_t i) const { return buckets_[i]; }

  /// Estimated number of rows with column == v (uniformity within bucket).
  double EstimateEquals(const Value& v) const;

  /// Estimated number of rows with lo <= column <= hi; either bound may be
  /// omitted (unbounded) via the flags. Non-inclusive bounds supported.
  double EstimateRange(const Value& lo, bool lo_inclusive, bool lo_unbounded,
                       const Value& hi, bool hi_inclusive,
                       bool hi_unbounded) const;

  /// Total distinct values across buckets.
  uint64_t TotalDistinct() const;

  std::string ToString() const;

 private:
  // Fraction of bucket `b` with values < v (or <= v), by linear
  // interpolation for numerics, and by the conservative 0.5 for strings.
  double FractionBelow(const Bucket& b, const Value& v, bool inclusive) const;

  std::vector<Bucket> buckets_;
  uint64_t total_rows_ = 0;
  uint64_t null_rows_ = 0;
};

}  // namespace qprog

#endif  // QPROG_STATS_HISTOGRAM_H_
