#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/strings.h"
#include "storage/table.h"

namespace qprog {

Histogram Histogram::Build(const Table& table, size_t column,
                           size_t num_buckets) {
  QPROG_CHECK(num_buckets >= 1);
  Histogram h;
  std::vector<Value> values;
  values.reserve(table.num_rows());
  for (uint64_t i = 0; i < table.num_rows(); ++i) {
    const Value& v = table.at(i, column);
    if (v.is_null()) {
      ++h.null_rows_;
    } else {
      values.push_back(v);
    }
  }
  h.total_rows_ = table.num_rows();
  if (values.empty()) return h;

  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });

  const uint64_t n = values.size();
  const uint64_t depth = std::max<uint64_t>(1, (n + num_buckets - 1) / num_buckets);
  size_t begin = 0;
  while (begin < n) {
    size_t end = std::min<size_t>(begin + depth, n);
    // Extend the bucket so equal values never straddle a boundary (keeps
    // EstimateEquals consistent).
    while (end < n && values[end].Compare(values[end - 1]) == 0) ++end;
    Bucket b;
    b.lower = values[begin];
    b.upper = values[end - 1];
    b.count = end - begin;
    b.distinct = 1;
    for (size_t i = begin + 1; i < end; ++i) {
      if (values[i].Compare(values[i - 1]) != 0) ++b.distinct;
    }
    h.buckets_.push_back(std::move(b));
    begin = end;
  }
  return h;
}

double Histogram::FractionBelow(const Bucket& b, const Value& v,
                                bool inclusive) const {
  if (v.Compare(b.lower) < 0) return 0.0;
  if (v.Compare(b.upper) > 0) return 1.0;
  if (b.lower.type() == TypeId::kString || v.type() == TypeId::kString) {
    // No numeric interpolation for strings; assume half the bucket.
    return 0.5;
  }
  double lo = b.lower.AsDouble();
  double hi = b.upper.AsDouble();
  if (hi <= lo) return inclusive ? 1.0 : 0.0;
  double f = (v.AsDouble() - lo) / (hi - lo);
  if (inclusive) {
    // Include the "slice" of rows equal to v.
    f += 1.0 / std::max<double>(1.0, static_cast<double>(b.distinct));
  }
  return std::clamp(f, 0.0, 1.0);
}

double Histogram::EstimateEquals(const Value& v) const {
  if (v.is_null()) return static_cast<double>(null_rows_);
  for (const Bucket& b : buckets_) {
    if (v.Compare(b.lower) >= 0 && v.Compare(b.upper) <= 0) {
      return static_cast<double>(b.count) /
             std::max<double>(1.0, static_cast<double>(b.distinct));
    }
  }
  return 0.0;
}

double Histogram::EstimateRange(const Value& lo, bool lo_inclusive,
                                bool lo_unbounded, const Value& hi,
                                bool hi_inclusive, bool hi_unbounded) const {
  double total = 0.0;
  for (const Bucket& b : buckets_) {
    double above_lo = 1.0;
    if (!lo_unbounded) {
      // Fraction of the bucket at or above `lo` = 1 - fraction strictly
      // below. FractionBelow(v, inclusive=false) approximates P(x < v);
      // FractionBelow(v, inclusive=true) approximates P(x <= v).
      above_lo = 1.0 - FractionBelow(b, lo, /*inclusive=*/!lo_inclusive);
    }
    double below_hi = 1.0;
    if (!hi_unbounded) {
      below_hi = FractionBelow(b, hi, hi_inclusive);
    }
    double fraction = std::clamp(above_lo + below_hi - 1.0, 0.0, 1.0);
    total += fraction * static_cast<double>(b.count);
  }
  return total;
}

uint64_t Histogram::TotalDistinct() const {
  uint64_t d = 0;
  for (const Bucket& b : buckets_) d += b.distinct;
  return d;
}

std::string Histogram::ToString() const {
  std::string out = StringPrintf("Histogram(%zu buckets, %llu rows, %llu null)",
                                 buckets_.size(),
                                 static_cast<unsigned long long>(total_rows_),
                                 static_cast<unsigned long long>(null_rows_));
  for (const Bucket& b : buckets_) {
    out += StringPrintf("\n  [%s, %s] count=%llu distinct=%llu",
                        b.lower.ToString().c_str(), b.upper.ToString().c_str(),
                        static_cast<unsigned long long>(b.count),
                        static_cast<unsigned long long>(b.distinct));
  }
  return out;
}

}  // namespace qprog
