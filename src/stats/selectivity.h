// Selectivity and cardinality estimation from single-relation statistics.
//
// This is the optimizer-style estimator the paper contrasts progress
// estimation against (Sections 2.5 and 7): histogram lookups combined under
// the independence assumption, and join estimation via the standard
// 1/max(distinct) containment formula. It supplies the dne estimator's
// pipeline weights and the SQL planner's join ordering, and — exactly as the
// paper observes — it stays badly wrong under skew, which is why the
// bounds-based estimators do not rely on it.

#ifndef QPROG_STATS_SELECTIVITY_H_
#define QPROG_STATS_SELECTIVITY_H_

#include <optional>
#include <vector>

#include "stats/table_stats.h"
#include "types/compare_op.h"
#include "types/value.h"

namespace qprog {

/// A simple predicate "column <op> literal" for estimation purposes.
struct PredicateDesc {
  size_t column = 0;
  CompareOp op = CompareOp::kEq;
  Value operand;
};

/// Estimated selectivity (0..1) of a single predicate against `stats`.
/// Falls back to textbook magic constants (1/10 equality, 1/3 range) when
/// the column lacks a histogram.
double EstimatePredicateSelectivity(const TableStats& stats,
                                    const PredicateDesc& pred);

/// Independence-assumption conjunction of predicates.
double EstimateConjunctionSelectivity(const TableStats& stats,
                                      const std::vector<PredicateDesc>& preds);

/// Estimated output cardinality of an equi-join between two inputs with the
/// given cardinalities and per-side join-column distinct counts:
/// |L| * |R| / max(d_L, d_R).
double EstimateJoinCardinality(double left_rows, uint64_t left_distinct,
                               double right_rows, uint64_t right_distinct);

/// Estimated number of groups when grouping `input_rows` rows by columns
/// with the given distinct counts (capped product, then capped by rows).
double EstimateGroupCount(double input_rows,
                          const std::vector<uint64_t>& column_distincts);

}  // namespace qprog

#endif  // QPROG_STATS_SELECTIVITY_H_
