#include "stats/selectivity.h"

#include <algorithm>
#include <cmath>

namespace qprog {

namespace {
constexpr double kDefaultEqSelectivity = 0.1;
constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;
}  // namespace

double EstimatePredicateSelectivity(const TableStats& stats,
                                    const PredicateDesc& pred) {
  if (stats.row_count() == 0) return 0.0;
  if (pred.column >= stats.num_columns()) {
    return pred.op == CompareOp::kEq ? kDefaultEqSelectivity
                                     : kDefaultRangeSelectivity;
  }
  const ColumnStats& cs = stats.column(pred.column);
  const double rows = static_cast<double>(stats.row_count());
  if (!cs.histogram.has_value() || cs.histogram->num_buckets() == 0) {
    if (pred.op == CompareOp::kEq && cs.distinct > 0) {
      return 1.0 / static_cast<double>(cs.distinct);
    }
    return pred.op == CompareOp::kEq ? kDefaultEqSelectivity
                                     : kDefaultRangeSelectivity;
  }
  const Histogram& h = *cs.histogram;
  double matched = 0.0;
  switch (pred.op) {
    case CompareOp::kEq:
      matched = h.EstimateEquals(pred.operand);
      break;
    case CompareOp::kNe:
      matched = rows - h.EstimateEquals(pred.operand) -
                static_cast<double>(cs.null_count);
      break;
    case CompareOp::kLt:
      matched = h.EstimateRange(Value::Null(), false, true, pred.operand,
                                /*hi_inclusive=*/false, false);
      break;
    case CompareOp::kLe:
      matched = h.EstimateRange(Value::Null(), false, true, pred.operand,
                                /*hi_inclusive=*/true, false);
      break;
    case CompareOp::kGt:
      matched = h.EstimateRange(pred.operand, /*lo_inclusive=*/false, false,
                                Value::Null(), false, true);
      break;
    case CompareOp::kGe:
      matched = h.EstimateRange(pred.operand, /*lo_inclusive=*/true, false,
                                Value::Null(), false, true);
      break;
  }
  return std::clamp(matched / rows, 0.0, 1.0);
}

double EstimateConjunctionSelectivity(const TableStats& stats,
                                      const std::vector<PredicateDesc>& preds) {
  double sel = 1.0;
  for (const PredicateDesc& p : preds) {
    sel *= EstimatePredicateSelectivity(stats, p);
  }
  return sel;
}

double EstimateJoinCardinality(double left_rows, uint64_t left_distinct,
                               double right_rows, uint64_t right_distinct) {
  double d = static_cast<double>(std::max<uint64_t>(
      1, std::max(left_distinct, right_distinct)));
  return left_rows * right_rows / d;
}

double EstimateGroupCount(double input_rows,
                          const std::vector<uint64_t>& column_distincts) {
  double groups = 1.0;
  for (uint64_t d : column_distincts) {
    groups *= static_cast<double>(std::max<uint64_t>(1, d));
    if (groups > input_rows) break;
  }
  return std::min(groups, std::max(1.0, input_rows));
}

}  // namespace qprog
