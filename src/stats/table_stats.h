// TableStats / StatisticsGenerator: the paper's single-relation statistics
// abstraction (Section 2.3). A StatisticsGenerator maps a relation instance
// to a statistic; generators may be deterministic (histograms) or randomized
// (precomputed samples). All generators here are *lossy* in the paper's
// sense: one can change a tuple without changing the produced statistic.

#ifndef QPROG_STATS_TABLE_STATS_H_
#define QPROG_STATS_TABLE_STATS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "types/value.h"

namespace qprog {

class Table;
class Rng;

/// Per-column statistics.
struct ColumnStats {
  std::string name;
  uint64_t distinct = 0;
  uint64_t null_count = 0;
  Value min;  // NULL when the column is all-NULL
  Value max;
  std::optional<Histogram> histogram;
};

/// Statistics for a single relation.
class TableStats {
 public:
  TableStats() = default;

  uint64_t row_count() const { return row_count_; }
  void set_row_count(uint64_t n) { row_count_ = n; }

  size_t num_columns() const { return columns_.size(); }
  const ColumnStats& column(size_t i) const { return columns_[i]; }
  ColumnStats* mutable_column(size_t i) { return &columns_[i]; }
  void AddColumn(ColumnStats stats) { columns_.push_back(std::move(stats)); }

  /// Optional row sample (row ids into the base table at collection time).
  const std::vector<Row>& sample() const { return sample_; }
  void set_sample(std::vector<Row> sample) { sample_ = std::move(sample); }

 private:
  uint64_t row_count_ = 0;
  std::vector<ColumnStats> columns_;
  std::vector<Row> sample_;
};

/// Interface: maps one relation instance to a statistic (the paper's SG).
class StatisticsGenerator {
 public:
  virtual ~StatisticsGenerator() = default;

  /// Produces statistics for `table`.
  virtual std::unique_ptr<TableStats> Generate(const Table& table) = 0;

  /// Human-readable generator name.
  virtual std::string name() const = 0;
};

/// Deterministic generator: per-column equi-depth histograms with a bounded
/// bucket budget, plus min/max/distinct/null counts. Lossy whenever a bucket
/// holds more than one distinct value slot.
class HistogramStatisticsGenerator : public StatisticsGenerator {
 public:
  explicit HistogramStatisticsGenerator(size_t buckets_per_column = 32)
      : buckets_per_column_(buckets_per_column) {}

  std::unique_ptr<TableStats> Generate(const Table& table) override;
  std::string name() const override { return "histogram"; }

 private:
  size_t buckets_per_column_;
};

/// Randomized generator: a uniform reservoir sample of whole rows, plus row
/// count. Models the paper's "pre-computed samples" alternative.
class SampleStatisticsGenerator : public StatisticsGenerator {
 public:
  SampleStatisticsGenerator(size_t sample_size, uint64_t seed)
      : sample_size_(sample_size), seed_(seed) {}

  std::unique_ptr<TableStats> Generate(const Table& table) override;
  std::string name() const override { return "sample"; }

 private:
  size_t sample_size_;
  uint64_t seed_;
};

}  // namespace qprog

#endif  // QPROG_STATS_TABLE_STATS_H_
