#include "server/admission.h"

#include <cmath>

#include "exec/query_guard.h"

namespace qprog {
namespace {

// splitmix64 finalizer — the same cheap bijective mix the spill layer uses
// for salted re-partitioning; good enough to decorrelate fingerprints.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

const char* AdmissionActionToString(AdmissionAction action) {
  switch (action) {
    case AdmissionAction::kAdmit:
      return "admit";
    case AdmissionAction::kQueue:
      return "queue";
    case AdmissionAction::kShed:
      return "shed";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         const WorkloadStatsRegistry* priors)
    : options_(options), priors_(priors) {}

uint64_t AdmissionController::PredictPeakRows(uint64_t fingerprint,
                                              bool* from_prior) const {
  if (priors_ != nullptr) {
    bool found = false;
    WorkloadStats stats = priors_->Lookup(fingerprint, &found);
    if (found && stats.runs > 0) {
      if (from_prior != nullptr) *from_prior = true;
      double padded =
          static_cast<double>(stats.max_peak_buffered_rows) * options_.headroom;
      uint64_t predicted = static_cast<uint64_t>(std::ceil(padded));
      return predicted > 0 ? predicted : 1;
    }
  }
  if (from_prior != nullptr) *from_prior = false;
  // Cold template: seeded prior in [fallback/2, 3*fallback/2). Deterministic
  // per (seed, fingerprint); spread so a burst of distinct cold templates
  // does not predict one identical number.
  uint64_t base = options_.fallback_peak_rows;
  if (base == 0) return 1;
  uint64_t jitter = Mix64(options_.seed ^ fingerprint) % (base > 1 ? base : 1);
  uint64_t predicted = base / 2 + jitter;
  return predicted > 0 ? predicted : 1;
}

AdmissionDecision AdmissionController::Decide(uint64_t fingerprint,
                                              const TenantQuota& quota,
                                              const Load& load) const {
  AdmissionDecision d;
  d.predicted_peak_rows = PredictPeakRows(fingerprint, &d.predicted_from_prior);

  uint64_t backlog = static_cast<uint64_t>(load.queued + load.running) + 1;
  // Tenant isolation first: a tenant past its quota is shed even if the
  // global queue has room — its backlog must not crowd other tenants out.
  if (load.tenant_inflight + 1 > quota.max_concurrent ||
      (quota.max_inflight_predicted_rows != TenantQuota::kUnlimited &&
       load.tenant_inflight_predicted_rows + d.predicted_peak_rows >
           quota.max_inflight_predicted_rows)) {
    d.action = AdmissionAction::kShed;
    d.reason = "tenant-quota";
    d.retry_after_ms = options_.retry_after_base_ms * backlog;
    return d;
  }
  if (load.queued >= options_.max_queue) {
    d.action = AdmissionAction::kShed;
    d.reason = "queue-full";
    d.retry_after_ms = options_.retry_after_base_ms * backlog;
    return d;
  }
  // Accepted. kAdmit when the predicted-row ledger says it fits right now
  // and nothing is ahead of it; otherwise it queues (behind earlier work,
  // or for the governor to free/revoke memory).
  bool fits = load.pool_rows == QueryGuard::kNoLimit ||
              load.inflight_predicted_rows + d.predicted_peak_rows <=
                  load.pool_rows;
  if (load.queued == 0 && fits) {
    d.action = AdmissionAction::kAdmit;
  } else {
    d.action = AdmissionAction::kQueue;
    d.queue_position = load.queued;
  }
  return d;
}

}  // namespace qprog
