#include "server/memory_governor.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace qprog {

MemoryGovernor::MemoryGovernor(GovernorOptions options)
    : options_(options) {
  QPROG_CHECK(options_.min_grant_rows > 0);
  if (options_.pool_rows != QueryGuard::kNoLimit) {
    QPROG_CHECK(options_.pool_rows >= options_.min_grant_rows);
  }
}

MemoryGovernor::Grant MemoryGovernor::Acquire(QueryGuard* guard,
                                              uint64_t want) {
  QPROG_CHECK(guard != nullptr);
  if (options_.pool_rows == QueryGuard::kNoLimit) {
    // Arbitration disabled: unlimited ask stays unlimited, a concrete ask is
    // honored verbatim.
    std::lock_guard<std::mutex> lock(mu_);
    Grant grant{next_id_++, want};
    guard->set_max_buffered_rows(want);
    ++grants_issued_;
    return grant;
  }

  want = std::min(want, options_.pool_rows);
  want = std::max(want, options_.min_grant_rows);

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (guard->cancel_requested()) return Grant{};

    uint64_t free = options_.pool_rows - granted_total_;
    if (free >= want) {
      Grant grant{next_id_++, want};
      granted_total_ += want;
      active_.emplace(grant.id, Active{guard, want});
      guard->set_max_buffered_rows(want);
      ++grants_issued_;
      cv_.notify_all();
      return grant;
    }

    // Short: how much headroom could revocation reclaim?
    uint64_t reclaimable = 0;
    for (const auto& [id, a] : active_) {
      if (a.rows > options_.min_grant_rows) {
        reclaimable += a.rows - options_.min_grant_rows;
      }
    }
    if (free + reclaimable >= options_.min_grant_rows) {
      uint64_t target = std::min(want, free + reclaimable);
      uint64_t needed = target - free;
      // Victims largest-grant-first; ties broken by earliest id so the
      // arbitration is a pure function of the call sequence.
      std::vector<std::pair<uint64_t, Active*>> victims;
      victims.reserve(active_.size());
      for (auto& [id, a] : active_) victims.emplace_back(id, &a);
      std::stable_sort(victims.begin(), victims.end(),
                       [](const auto& x, const auto& y) {
                         return x.second->rows > y.second->rows;
                       });
      for (auto& [id, a] : victims) {
        if (needed == 0) break;
        if (a->rows <= options_.min_grant_rows) continue;
        uint64_t take = std::min(needed, a->rows - options_.min_grant_rows);
        a->rows -= take;
        granted_total_ -= take;
        needed -= take;
        ++revocations_;
        // The victim observes the shrink at its next buffered-row charge
        // and spills earlier; its kill threshold is untouched.
        a->guard->set_max_buffered_rows(a->rows);
      }
      Grant grant{next_id_++, target};
      granted_total_ += target;
      active_.emplace(grant.id, Active{guard, target});
      guard->set_max_buffered_rows(target);
      ++grants_issued_;
      cv_.notify_all();
      return grant;
    }

    // Even full revocation cannot seat another query: every active grant
    // already sits at the floor. Wait for a release (or cancellation).
    cv_.wait(lock);
  }
}

void MemoryGovernor::Release(const Grant& grant) {
  if (grant.id == 0) return;
  if (options_.pool_rows == QueryGuard::kNoLimit) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(grant.id);
  QPROG_CHECK(it != active_.end());
  // Return what the grant currently holds (revocation may have shrunk it
  // below grant.rows).
  granted_total_ -= it->second.rows;
  active_.erase(it);
  cv_.notify_all();
}

void MemoryGovernor::Poke() {
  // Taking the lock orders the caller's cancel store before any waiter's
  // re-check: a waiter is either inside wait() (woken here) or will observe
  // the cancellation on its next predicate evaluation.
  std::lock_guard<std::mutex> lock(mu_);
  cv_.notify_all();
}

uint64_t MemoryGovernor::granted_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return granted_total_;
}

uint64_t MemoryGovernor::free_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.pool_rows == QueryGuard::kNoLimit) return QueryGuard::kNoLimit;
  return options_.pool_rows - granted_total_;
}

uint64_t MemoryGovernor::active_grants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.size();
}

uint64_t MemoryGovernor::revocations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return revocations_;
}

uint64_t MemoryGovernor::grants_issued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grants_issued_;
}

}  // namespace qprog
