// Per-tenant quotas for the multi-tenant query server. A tenant is a named
// principal (customer, team, workload class) whose queries share one slice
// of the server's resources; quotas bound how much of the fleet a single
// tenant can occupy, so one tenant's burst degrades its own queries before
// anyone else's (cross-tenant isolation, enforced at admission time).

#ifndef QPROG_SERVER_TENANT_H_
#define QPROG_SERVER_TENANT_H_

#include <cstdint>
#include <limits>

namespace qprog {

struct TenantQuota {
  static constexpr uint64_t kUnlimited = std::numeric_limits<uint64_t>::max();

  /// Queries this tenant may have in flight (queued + running) at once.
  /// Submissions beyond it are shed with kResourceExhausted, not queued —
  /// a tenant over its quota must not occupy global queue slots.
  uint64_t max_concurrent = kUnlimited;

  /// Cap on the sum of *predicted* peak buffered rows across this tenant's
  /// in-flight queries — the admission-time view of its memory footprint.
  uint64_t max_inflight_predicted_rows = kUnlimited;
};

}  // namespace qprog

#endif  // QPROG_SERVER_TENANT_H_
