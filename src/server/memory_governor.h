// MemoryGovernor: global arbitration of buffered-row (spill) budgets across
// concurrently executing queries.
//
// The engine's memory proxy is buffered rows (exec/query_guard.h): each
// query's *soft* budget decides when its blocking operators spill, and its
// separate kill threshold decides when it aborts. The governor owns one
// shared pool of soft-budget rows for the whole server and hands each
// starting query a grant out of it. When the free pool cannot cover a new
// arrival, the governor *revokes headroom* from the largest active grants —
// shrinking each victim's grant toward a per-query floor and pushing the new
// value into the victim's QueryGuard (atomic soft budget). A revoked victim
// spills earlier than it would have solo; it never aborts, because the kill
// threshold is untouched. This is the load-shaping half of multi-tenancy:
// admission (server/admission.h) bounds what enters, the governor bounds
// what admitted queries may buffer simultaneously.
//
// Determinism: grant sizes and victim choice are pure functions of the
// sequence of Acquire/Release calls (victims ordered largest-grant-first,
// ties by earliest grant id). Callers that serialize acquisitions — e.g. a
// single-session server, or a test driving queries one at a time — therefore
// see identical grants and revocations run to run. Under true concurrency
// the *interleaving* of acquisitions is the only nondeterminism.
//
// Thread-safe. Acquire blocks (it is the backpressure point) until at least
// min_grant_rows can be produced or the waiting query is cancelled.

#ifndef QPROG_SERVER_MEMORY_GOVERNOR_H_
#define QPROG_SERVER_MEMORY_GOVERNOR_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>

#include "exec/query_guard.h"

namespace qprog {

struct GovernorOptions {
  /// Total soft-budget rows shared by all concurrent queries. kNoLimit
  /// disables arbitration (every query gets its full ask).
  uint64_t pool_rows = QueryGuard::kNoLimit;

  /// Revocation floor: no active grant is shrunk below this, and no new
  /// query starts with less. Keep pool_rows >= expected concurrency *
  /// min_grant_rows or late arrivals block in Acquire until a release.
  uint64_t min_grant_rows = 64;
};

class MemoryGovernor {
 public:
  struct Grant {
    uint64_t id = 0;
    uint64_t rows = 0;  // as granted; revocation later may shrink the guard
  };

  explicit MemoryGovernor(GovernorOptions options);
  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  /// Blocks until min(want, pool) rows — but at least min_grant_rows — can
  /// be carved out of the free pool plus revocable headroom, then installs
  /// the grant as `guard`'s soft budget and returns it. Revokes headroom
  /// from active grants (largest first, down to the floor) when the free
  /// pool alone is short. If `guard` is cancelled while waiting, returns a
  /// zero-row Grant (id 0) without touching the guard; the caller should
  /// let the cancelled query run into its guard check and abort.
  Grant Acquire(QueryGuard* guard, uint64_t want);

  /// Returns a grant's rows to the pool and wakes waiters. The guard may
  /// already be destroyed; Release never touches it. No-op for the zero
  /// Grant{}.
  void Release(const Grant& grant);

  /// Wakes Acquire waiters so they can observe a cancellation.
  void Poke();

  uint64_t pool_rows() const { return options_.pool_rows; }
  uint64_t granted_rows() const;
  uint64_t free_rows() const;
  uint64_t active_grants() const;
  /// Individual victim shrinks performed (one per victim per arbitration).
  uint64_t revocations() const;
  uint64_t grants_issued() const;

 private:
  struct Active {
    QueryGuard* guard;
    uint64_t rows;
  };

  GovernorOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Active> active_;  // grant id -> live grant (id-ordered)
  uint64_t granted_total_ = 0;
  uint64_t next_id_ = 1;
  uint64_t revocations_ = 0;
  uint64_t grants_issued_ = 0;
};

}  // namespace qprog

#endif  // QPROG_SERVER_MEMORY_GOVERNOR_H_
