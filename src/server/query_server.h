// QueryServer: the multi-tenant execution layer — N concurrent sessions over
// the SQL layer, with admission control, a global memory governor, per-tenant
// quotas, load shedding, graceful drain, and fleet-level progress reporting.
//
// Life of a query:
//   Submit(tenant, sql)             caller thread, under the server mutex
//     -> fingerprint + predicted peak rows (admission.h priors)
//     -> AdmissionDecision: admit / queue / shed
//        shed  -> ticket finishes immediately: kResourceExhausted, a
//                 retry-after hint, and a *sanitized* partial ProgressReport
//                 (estimator names + termination + status; no checkpoints,
//                 no plan figures — the query never touched the engine)
//        admit/queue -> FIFO run queue by ticket id
//   session thread pops the ticket
//     -> MemoryGovernor::Acquire (may revoke headroom from running victims)
//     -> per-ticket QueryGuard + SpillManager + SqlSession: one query's
//        fault, abort, or spill cannot touch another session's state
//        (cross-query fault isolation); guardrail aborts come back as the
//        report's status, engine faults as the ticket's status
//     -> governor Release, priors updated, waiters notified
//   Wait(ticket) returns the QueryResult; Fleet() snapshots every ticket's
//   state — latest estimator output for running queries, queue position and
//   predicted-wait hint for queued ones, pool occupancy for the whole fleet.
//
// Determinism: admission decisions are made at submission time from
// deterministic inputs only (see admission.h); for a fixed seed and a fixed
// submission sequence the decisions replay exactly. Execution-side
// determinism is per query: a ticket run with an explicit soft_budget_rows
// and its own fault injector / telemetry produces byte-identical traces to a
// solo run of the same query, whatever else the fleet is doing — unless the
// governor actually revokes its headroom, which changes *when* it spills but
// never the rows it returns nor the Curr <= LB <= UB invariant.
//
// Shutdown() (and the destructor) drains gracefully: no new submissions,
// queued + running work finishes, session threads join.

#ifndef QPROG_SERVER_QUERY_SERVER_H_
#define QPROG_SERVER_QUERY_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/monitor.h"
#include "obs/metrics_registry.h"
#include "obs/workload_stats.h"
#include "server/admission.h"
#include "server/memory_governor.h"
#include "server/tenant.h"
#include "sql/session.h"
#include "storage/catalog.h"

namespace qprog {

/// Engine knobs (worker_pool, batch_size, partitions) ride on the shared
/// ExecutionConfig base and are forwarded to every session: worker_pool is
/// the fleet-wide default pool (a per-submission SubmitOptions::worker_pool
/// overrides it), and partitions > 1 plans decomposable aggregations as
/// partitioned exchange pipelines (sql/planner.h).
struct ServerOptions : ExecutionConfig {
  /// Concurrent session threads (the fleet's parallelism). 1 serializes
  /// execution entirely — useful for deterministic end-to-end tests.
  size_t sessions = 4;

  GovernorOptions governor;
  AdmissionOptions admission;

  /// Defaults applied to every query unless its SubmitOptions override them.
  std::vector<std::string> estimators = {"dne", "safe"};
  uint64_t checkpoint_interval = 1000;
  /// Per-query kill threshold (hard buffered-row ceiling once spilling).
  uint64_t kill_rows = QueryGuard::kNoLimit;
  /// Spill directory for per-query SpillManagers ("" = $TMPDIR).
  std::string spill_dir;

  /// Quota for tenants never registered explicitly.
  TenantQuota default_quota;

  /// Cross-run estimator registry (obs/cross_run_registry.h), shared and
  /// caller-owned. When attached: its persisted workload aggregates seed the
  /// admission priors at construction (predictions survive a restart),
  /// every session threads it through for recording and prior feedback, and
  /// an "auto" estimator spec is resolved per ticket at Submit time — the
  /// pick rides on the ticket, so the fleet display and the run agree even
  /// while concurrent runs keep learning.
  CrossRunRegistry* cross_run = nullptr;
  /// Forwarded to each session's SessionOptions (see sql/session.h).
  bool cross_run_feedback = true;
  uint64_t cross_run_min_runs = 3;
};

/// Per-submission overrides. All pointers are borrowed and must outlive the
/// query's execution (i.e. until Wait() returns for its ticket).
struct SubmitOptions {
  /// false: plain execution, result rows returned in QueryResult::rows.
  /// true: monitored run (checkpoints + estimators), rows are consumed by
  /// the monitor and only counted.
  bool monitored = true;

  std::vector<std::string> estimators;  // empty = server defaults
  uint64_t checkpoint_interval = 0;     // 0 = server default

  /// Explicit soft-budget ask, replacing the admission prediction as the
  /// governor ask. Tests use this to pin a query's spill behavior to its
  /// solo run.
  uint64_t soft_budget_rows = 0;

  uint64_t max_work = QueryGuard::kNoLimit;
  uint64_t kill_rows = 0;  // 0 = server default
  std::chrono::nanoseconds timeout{0};  // 0 = none

  FaultInjector* fault_injector = nullptr;  // this query's fault schedule
  TelemetryCollector* telemetry = nullptr;  // this query's trace sink
  WorkerPool* worker_pool = nullptr;        // intra-query parallelism

  /// Called on the query thread at every checkpoint (after the server's own
  /// fleet-state update, outside its lock) — tests use it to observe bounds
  /// live or to trigger deterministic work-indexed cancellation.
  std::function<void(const Checkpoint&)> checkpoint_listener;
};

/// Everything one finished ticket produced.
struct QueryResult {
  /// OK, the guardrail/fault status of an aborted run, kResourceExhausted
  /// for a shed submission, or kUnavailable for a submission during drain.
  Status status;
  AdmissionDecision admission;
  /// Monitored runs: the full report (partial on abort). Shed submissions:
  /// a sanitized stub (names/termination/status only). Plain runs: empty.
  ProgressReport report;
  /// Plain (monitored == false) successful runs only.
  std::vector<Row> rows;
  uint64_t granted_rows = 0;  // governor grant the run started with
};

/// One ticket's row in the fleet report.
struct FleetQueryInfo {
  uint64_t ticket = 0;
  std::string tenant;
  enum class State { kQueued, kRunning, kDone } state = State::kQueued;
  AdmissionAction admission = AdmissionAction::kAdmit;
  uint64_t predicted_peak_rows = 0;
  uint64_t granted_rows = 0;

  // kQueued:
  size_t queue_position = 0;
  /// Hint only (wall-clock prior x position / sessions); never feeds any
  /// decision.
  uint64_t predicted_wait_ns = 0;

  /// Auto-selection (only when an "auto" spec was submitted with a cross-run
  /// registry attached): the fixed estimator picked for this template at
  /// Submit time, and its historical RMS terminal error (-1 for a cold
  /// template running the fallback).
  std::string auto_pick;
  double auto_rms_error = -1;

  // kRunning (latest checkpoint, if any yet):
  uint64_t work = 0;
  std::vector<std::string> estimator_names;
  std::vector<double> estimates;
  double work_lb = 0;
  double work_ub = 0;
  /// Latest calibrated wall-clock band from the ticket's EtaModel; all
  /// +infinity before the first checkpoint (renderers show "--").
  double eta_seconds = std::numeric_limits<double>::infinity();
  double eta_lo_seconds = std::numeric_limits<double>::infinity();
  double eta_hi_seconds = std::numeric_limits<double>::infinity();

  // kDone:
  Status status;
};

struct FleetReport {
  std::vector<FleetQueryInfo> queries;  // ticket order
  size_t sessions = 0;
  size_t queued = 0;
  size_t running = 0;
  uint64_t done = 0;
  uint64_t shed = 0;
  uint64_t pool_rows = 0;
  uint64_t granted_rows = 0;
  uint64_t revocations = 0;
  /// Fleet drain projection, a display hint only: the slowest running
  /// query's eta_hi plus the queued work priced at each template's
  /// historical mean wall time spread over the session threads. 0 when the
  /// fleet is idle or nothing has a finite projection yet.
  double predicted_drain_seconds = 0;
  /// Prometheus text exposition of the server's own counters/latencies
  /// (MetricsRegistry::DumpPrometheus) — one scrape-ready page per
  /// Fleet() call.
  std::string metrics_text;
  /// The estimator catalog (core/estimators.h ListEstimatorSpecs): every
  /// spec the server accepts in ServerOptions::estimators or
  /// SubmitOptions::estimators, with syntax and a one-line description.
  std::vector<EstimatorSpecInfo> estimator_specs;
};

class QueryServer {
 public:
  /// `db` is borrowed and must outlive the server.
  QueryServer(const Database* db, ServerOptions options = ServerOptions());
  ~QueryServer();  // graceful drain

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Installs (or replaces) a tenant's quota. Unregistered tenants get
  /// options().default_quota on first submission.
  void RegisterTenant(const std::string& tenant, TenantQuota quota);

  /// Admission-checks and enqueues (or sheds) the query; returns its ticket
  /// immediately. Never blocks on execution.
  uint64_t Submit(const std::string& tenant, const std::string& query,
                  SubmitOptions opts = SubmitOptions());

  /// Blocks until the ticket finishes (done, shed, or cancelled), then
  /// returns a copy of its result. Repeatable.
  QueryResult Wait(uint64_t ticket);

  /// Cooperative cancel: a queued ticket finishes kCancelled without
  /// running; a running one is cancelled through its guard.
  void Cancel(uint64_t ticket);

  /// Snapshot of every ticket plus fleet totals.
  FleetReport Fleet() const;

  /// Stops admitting, finishes queued + running work, joins the session
  /// threads. Idempotent.
  void Shutdown();

  const ServerOptions& options() const { return options_; }
  const WorkloadStatsRegistry& workload_stats() const { return priors_; }
  const MemoryGovernor& governor() const { return governor_; }
  uint64_t submitted() const;
  uint64_t shed_total() const;

 private:
  struct TenantState {
    TenantQuota quota;
    uint64_t inflight = 0;  // queued + running
    uint64_t inflight_predicted_rows = 0;
    uint64_t shed = 0;
    uint64_t completed = 0;
  };

  struct Ticket {
    uint64_t id = 0;
    std::string tenant;
    std::string query;
    uint64_t fingerprint = 0;
    SubmitOptions opts;
    AdmissionDecision admission;
    std::string auto_pick;       // Submit-time auto resolution ("" = no auto)
    double auto_rms_error = -1;  // pick's historical RMS error (-1 = cold)
    FleetQueryInfo::State state = FleetQueryInfo::State::kQueued;
    bool done = false;
    bool cancel_requested = false;
    QueryGuard* running_guard = nullptr;  // non-null only while running
    uint64_t granted_rows = 0;
    // Latest checkpoint, mirrored for Fleet().
    uint64_t latest_work = 0;
    std::vector<double> latest_estimates;
    double latest_lb = 0;
    double latest_ub = 0;
    double latest_eta_s = std::numeric_limits<double>::infinity();
    double latest_eta_lo_s = std::numeric_limits<double>::infinity();
    double latest_eta_hi_s = std::numeric_limits<double>::infinity();
    std::vector<std::string> estimator_names;
    QueryResult result;
  };

  void SessionLoop();
  void RunTicket(Ticket* t);
  /// Finalizes a ticket under mu_: ledger, tenant accounting, wakeups.
  void FinishLocked(Ticket* t, FleetQueryInfo::State state);
  /// Estimator display names ("hybrid:2.5" -> "hybrid") for sanitized
  /// reports and Fleet rows before the first checkpoint.
  std::vector<std::string> ResolveEstimatorNames(
      const std::vector<std::string>& specs) const;

  const Database* db_;
  ServerOptions options_;
  WorkloadStatsRegistry priors_;
  MemoryGovernor governor_;
  AdmissionController admission_;

  mutable std::mutex mu_;
  /// Server-wide counters + latency histograms (queries submitted / shed /
  /// done, query wall time). MetricsRegistry is not thread-safe; every
  /// access is under mu_.
  MetricsRegistry metrics_;
  std::condition_variable work_cv_;  // session threads: queue / drain
  std::condition_variable done_cv_;  // Wait(): ticket completion
  std::map<uint64_t, std::unique_ptr<Ticket>> tickets_;  // id order
  std::deque<uint64_t> queue_;  // FIFO by ticket id
  std::map<std::string, TenantState> tenants_;
  std::vector<std::thread> threads_;
  bool draining_ = false;
  uint64_t next_ticket_ = 1;
  size_t running_ = 0;
  uint64_t inflight_predicted_rows_ = 0;
  uint64_t done_count_ = 0;
  uint64_t shed_count_ = 0;
};

}  // namespace qprog

#endif  // QPROG_SERVER_QUERY_SERVER_H_
