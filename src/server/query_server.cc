#include "server/query_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/macros.h"
#include "exec/spill.h"
#include "obs/eta_model.h"
#include "obs/telemetry.h"
#include "sql/fingerprint.h"

namespace qprog {

QueryServer::QueryServer(const Database* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      governor_(options_.governor),
      admission_(options_.admission, &priors_) {
  QPROG_CHECK(db_ != nullptr);
  QPROG_CHECK(options_.sessions > 0);
  QPROG_CHECK(options_.checkpoint_interval > 0);
  if (options_.cross_run != nullptr) {
    // Rehydrate the admission priors from the crash-safe registry: the
    // controller predicts from the same per-template aggregates it had
    // before the restart.
    options_.cross_run->ExportWorkloadStats(&priors_);
  }
  threads_.reserve(options_.sessions);
  for (size_t i = 0; i < options_.sessions; ++i) {
    threads_.emplace_back(&QueryServer::SessionLoop, this);
  }
}

QueryServer::~QueryServer() { Shutdown(); }

void QueryServer::RegisterTenant(const std::string& tenant,
                                 TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_[tenant].quota = quota;
}

std::vector<std::string> QueryServer::ResolveEstimatorNames(
    const std::vector<std::string>& specs) const {
  const std::vector<std::string>& s =
      specs.empty() ? options_.estimators : specs;
  std::vector<std::string> names;
  names.reserve(s.size());
  for (const std::string& spec : s) {
    names.push_back(spec.substr(0, spec.find(':')));
  }
  return names;
}

uint64_t QueryServer::Submit(const std::string& tenant,
                             const std::string& query, SubmitOptions opts) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.IncrementCounter("queries_submitted");
  uint64_t id = next_ticket_++;
  auto owned = std::make_unique<Ticket>();
  Ticket* t = owned.get();
  t->id = id;
  t->tenant = tenant;
  t->query = query;
  t->opts = std::move(opts);
  t->fingerprint = sql::TemplateFingerprint(query);
  t->estimator_names = ResolveEstimatorNames(t->opts.estimators);
  if (options_.cross_run != nullptr) {
    // Resolve "auto" once, here, from the registry state at submission: the
    // pick rides on the ticket into the session (QueryOptions::auto_pick),
    // so the fleet row and the run agree even though concurrent runs keep
    // updating the registry between Submit and execution.
    const std::vector<std::string>& specs =
        t->opts.estimators.empty() ? options_.estimators : t->opts.estimators;
    for (const std::string& spec : specs) {
      if (spec != "auto") continue;
      t->auto_pick = options_.cross_run->SelectEstimator(
          t->fingerprint, options_.cross_run_min_runs);
      CrossRunTemplateStats stats =
          options_.cross_run->Lookup(t->fingerprint);
      auto es = stats.estimators.find(t->auto_pick);
      if (es != stats.estimators.end() &&
          es->second.runs >= options_.cross_run_min_runs) {
        t->auto_rms_error = es->second.RmsError();
      }
      break;
    }
  }
  tickets_.emplace(id, std::move(owned));

  if (draining_) {
    t->result.status = Unavailable("server draining: submission rejected");
    t->result.report.names = t->estimator_names;
    t->result.report.termination = TerminationReason::kCancelled;
    t->result.report.status = t->result.status;
    t->state = FleetQueryInfo::State::kDone;
    t->done = true;
    t->result.admission = t->admission;
    done_cv_.notify_all();
    return id;
  }

  TenantState& ten = tenants_[tenant];  // default quota on first sight
  AdmissionController::Load load;
  load.queued = queue_.size();
  load.running = running_;
  load.inflight_predicted_rows = inflight_predicted_rows_;
  load.pool_rows = governor_.pool_rows();
  load.tenant_inflight = ten.inflight;
  load.tenant_inflight_predicted_rows = ten.inflight_predicted_rows;
  t->admission = admission_.Decide(t->fingerprint, ten.quota, load);
  t->result.admission = t->admission;

  if (t->admission.action == AdmissionAction::kShed) {
    // Shed: the query never touches the engine. The result carries
    // kResourceExhausted plus a *sanitized* partial report — estimator
    // names, termination, status; no checkpoints, no plan figures.
    t->result.status = ResourceExhausted(
        std::string("query shed at admission (") + t->admission.reason +
        "); retry after hint in decision");
    t->result.report.names = t->estimator_names;
    t->result.report.termination = TerminationReason::kBudgetExhausted;
    t->result.report.status = t->result.status;
    t->state = FleetQueryInfo::State::kDone;
    t->done = true;
    ++ten.shed;
    ++shed_count_;
    metrics_.IncrementCounter("queries_shed");
    done_cv_.notify_all();
    return id;
  }

  ++ten.inflight;
  ten.inflight_predicted_rows += t->admission.predicted_peak_rows;
  inflight_predicted_rows_ += t->admission.predicted_peak_rows;
  queue_.push_back(id);
  work_cv_.notify_one();
  return id;
}

void QueryServer::FinishLocked(Ticket* t, FleetQueryInfo::State state) {
  t->state = state;
  t->done = true;
  TenantState& ten = tenants_[t->tenant];
  QPROG_CHECK(ten.inflight > 0);
  --ten.inflight;
  ten.inflight_predicted_rows -= t->admission.predicted_peak_rows;
  inflight_predicted_rows_ -= t->admission.predicted_peak_rows;
  ++ten.completed;
  ++done_count_;
  metrics_.IncrementCounter("queries_done");
  done_cv_.notify_all();
}

void QueryServer::SessionLoop() {
  for (;;) {
    Ticket* t = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (draining_) return;
        continue;
      }
      uint64_t id = queue_.front();
      queue_.pop_front();
      t = tickets_.at(id).get();
      if (t->cancel_requested) {
        t->result.status = Cancelled("query cancelled while queued");
        t->result.report.names = t->estimator_names;
        t->result.report.termination = TerminationReason::kCancelled;
        t->result.report.status = t->result.status;
        FinishLocked(t, FleetQueryInfo::State::kDone);
        continue;
      }
      t->state = FleetQueryInfo::State::kRunning;
      ++running_;
    }

    RunTicket(t);

    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      FinishLocked(t, FleetQueryInfo::State::kDone);
      // A release may have made queued work grantable.
      work_cv_.notify_all();
    }
  }
}

void QueryServer::RunTicket(Ticket* t) {
  QueryGuard guard;
  // Register the guard before Acquire so Cancel() can reach a ticket blocked
  // on the governor (RequestCancel + Poke unblocks the wait).
  {
    std::lock_guard<std::mutex> lock(mu_);
    t->running_guard = &guard;
    if (t->cancel_requested) guard.RequestCancel();
  }
  uint64_t want;
  if (t->opts.soft_budget_rows > 0) {
    want = t->opts.soft_budget_rows;
  } else if (governor_.pool_rows() == QueryGuard::kNoLimit) {
    // Arbitration disabled and no explicit ask: leave the query unbounded
    // rather than imposing the admission prediction as a spill threshold.
    want = QueryGuard::kNoLimit;
  } else {
    want = t->admission.predicted_peak_rows;
  }
  MemoryGovernor::Grant grant = governor_.Acquire(&guard, want);
  if (grant.id == 0 && guard.cancel_requested()) {
    t->result.status = Cancelled("query cancelled awaiting memory grant");
    t->result.report.names = t->estimator_names;
    t->result.report.termination = TerminationReason::kCancelled;
    t->result.report.status = t->result.status;
    std::lock_guard<std::mutex> lock(mu_);
    t->running_guard = nullptr;
    return;
  }
  // Pre-execution configuration (not concurrently safe members): kill
  // threshold, work budget, deadline.
  guard.set_max_buffered_rows_kill(
      t->opts.kill_rows > 0 ? t->opts.kill_rows : options_.kill_rows);
  if (t->opts.max_work != QueryGuard::kNoLimit) {
    guard.set_max_work(t->opts.max_work);
  }
  if (t->opts.timeout.count() > 0) guard.set_timeout(t->opts.timeout);

  {
    std::lock_guard<std::mutex> lock(mu_);
    t->granted_rows = grant.rows;
    t->result.granted_rows = grant.rows;
  }

  // Per-ticket execution environment: its own guard and spill manager, so a
  // fault, abort, or leaked spill state in this query cannot leak into any
  // other session's run.
  SpillManager spill(options_.spill_dir);
  // Per-ticket ETA model: real clock, trace off (the fleet never records
  // wall-clock events into a query's byte-identical trace).
  EtaModel eta;
  sql::SessionOptions so;
  // Engine-knob spine (worker_pool / batch_size / partitions) copies from
  // the server defaults in one assignment; a per-submission pool override
  // then wins over the fleet-wide default.
  static_cast<ExecutionConfig&>(so) = options_;
  if (t->opts.worker_pool != nullptr) so.worker_pool = t->opts.worker_pool;
  so.estimators = options_.estimators;
  so.checkpoint_interval = options_.checkpoint_interval;
  so.guard = &guard;
  so.fault_injector = t->opts.fault_injector;
  so.spill_manager = &spill;
  so.telemetry = t->opts.telemetry;
  so.workload_stats = &priors_;
  so.cross_run = options_.cross_run;
  so.cross_run_feedback = options_.cross_run_feedback;
  so.cross_run_min_runs = options_.cross_run_min_runs;
  so.eta_model = &eta;
  sql::SqlSession session(db_, so);

  uint64_t run_start_ns = MonotonicNanos();
  if (t->opts.monitored) {
    sql::QueryOptions qo;
    qo.estimators = t->opts.estimators;
    qo.checkpoint_interval = t->opts.checkpoint_interval;
    qo.auto_pick = t->auto_pick;
    qo.checkpoint_listener = [this, t](const Checkpoint& cp) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        t->latest_work = cp.work;
        t->latest_estimates = cp.estimates;
        t->latest_lb = cp.work_lb;
        t->latest_ub = cp.work_ub;
        t->latest_eta_s = cp.eta_seconds;
        t->latest_eta_lo_s = cp.eta_lo_seconds;
        t->latest_eta_hi_s = cp.eta_hi_seconds;
      }
      // User listener outside the lock: it may call back into the server
      // (e.g. Cancel for deterministic work-indexed cancellation).
      if (t->opts.checkpoint_listener) t->opts.checkpoint_listener(cp);
    };
    StatusOr<ProgressReport> report = session.ExecuteMonitored(t->query, qo);
    if (report.ok()) {
      t->result.report = std::move(report).value();
      t->result.status = t->result.report.status;
    } else {
      // Parse/plan/spec failure: no report beyond the sanitized stub.
      t->result.status = report.status();
      t->result.report.names = t->estimator_names;
      t->result.report.termination =
          TerminationFromStatus(t->result.status);
      t->result.report.status = t->result.status;
    }
  } else {
    StatusOr<std::vector<Row>> rows = session.Execute(t->query);
    if (rows.ok()) {
      t->result.rows = std::move(rows).value();
      t->result.status = OkStatus();
    } else {
      t->result.status = rows.status();
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    t->running_guard = nullptr;
    metrics_.histogram("query_wall_ns")
        ->Record(static_cast<double>(MonotonicNanos() - run_start_ns));
  }
  governor_.Release(grant);
}

QueryResult QueryServer::Wait(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = tickets_.find(ticket);
  QPROG_CHECK(it != tickets_.end());
  Ticket* t = it->second.get();
  done_cv_.wait(lock, [&] { return t->done; });
  return t->result;
}

void QueryServer::Cancel(uint64_t ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) return;
  Ticket* t = it->second.get();
  if (t->done) return;
  t->cancel_requested = true;
  if (t->running_guard != nullptr) t->running_guard->RequestCancel();
  // A ticket blocked inside MemoryGovernor::Acquire re-checks its guard's
  // cancel token when poked. Queued-but-unclaimed tickets are finished by
  // the session thread that pops them.
  governor_.Poke();
}

FleetReport QueryServer::Fleet() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetReport fleet;
  fleet.sessions = options_.sessions;
  fleet.queued = queue_.size();
  fleet.running = running_;
  fleet.done = done_count_;
  fleet.shed = shed_count_;
  fleet.pool_rows = governor_.pool_rows();
  fleet.granted_rows = governor_.granted_rows();
  fleet.revocations = governor_.revocations();
  fleet.estimator_specs = ListEstimatorSpecs();

  // Queue positions in FIFO order.
  std::map<uint64_t, size_t> position;
  for (size_t i = 0; i < queue_.size(); ++i) position[queue_[i]] = i;

  double running_drain_s = 0;   // slowest running query's eta_hi
  double queued_work_s = 0;     // queued work at historical mean wall time
  fleet.queries.reserve(tickets_.size());
  for (const auto& [id, owned] : tickets_) {
    const Ticket& t = *owned;
    FleetQueryInfo info;
    info.ticket = t.id;
    info.tenant = t.tenant;
    info.state = t.state;
    info.admission = t.admission.action;
    info.predicted_peak_rows = t.admission.predicted_peak_rows;
    info.granted_rows = t.granted_rows;
    info.estimator_names = t.estimator_names;
    info.auto_pick = t.auto_pick;
    info.auto_rms_error = t.auto_rms_error;
    switch (t.state) {
      case FleetQueryInfo::State::kQueued: {
        auto pos = position.find(t.id);
        info.queue_position = pos != position.end() ? pos->second : 0;
        // Predicted wait: this template's historical mean wall time, scaled
        // by how much of the queue is ahead of it per session thread. A
        // display hint only — decisions never read wall time.
        bool found = false;
        WorkloadStats stats = priors_.Lookup(t.fingerprint, &found);
        uint64_t mean_ns = found ? stats.MeanWallNanos() : 0;
        info.predicted_wait_ns =
            mean_ns * (info.queue_position / options_.sessions + 1);
        queued_work_s += static_cast<double>(mean_ns) / 1e9;
        break;
      }
      case FleetQueryInfo::State::kRunning:
        info.work = t.latest_work;
        info.estimates = t.latest_estimates;
        info.work_lb = t.latest_lb;
        info.work_ub = t.latest_ub;
        info.eta_seconds = t.latest_eta_s;
        info.eta_lo_seconds = t.latest_eta_lo_s;
        info.eta_hi_seconds = t.latest_eta_hi_s;
        if (std::isfinite(t.latest_eta_hi_s)) {
          running_drain_s = std::max(running_drain_s, t.latest_eta_hi_s);
        }
        break;
      case FleetQueryInfo::State::kDone:
        info.status = t.result.status;
        break;
    }
    fleet.queries.push_back(std::move(info));
  }
  // Drain hint: running work bounded by the slowest upper band; queued work
  // spread across the session threads at its historical mean wall time.
  fleet.predicted_drain_seconds =
      running_drain_s + queued_work_s / static_cast<double>(options_.sessions);
  fleet.metrics_text = metrics_.DumpPrometheus();
  return fleet;
}

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ && threads_.empty()) return;
    draining_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

uint64_t QueryServer::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ticket_ - 1;
}

uint64_t QueryServer::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_count_;
}

}  // namespace qprog
