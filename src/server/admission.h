// AdmissionController: predicts a query's peak memory from per-template
// priors and decides — at submission time — whether it is admitted, queued,
// or shed.
//
// Prediction follows the LearnedWMP observation (PAPERS.md): memory demand
// clusters by query template. Every finished run feeds its template
// fingerprint (sql/fingerprint.h) and peak buffered rows into the shared
// WorkloadStatsRegistry; the controller predicts the next run of the same
// template at max observed peak x a headroom factor. Templates never seen
// before fall back to a *seeded* pseudo-random prior in
// [fallback/2, 3*fallback/2): deterministic for a fixed (seed, fingerprint),
// so a fixed-seed test replays the exact admission sequence while a fleet
// still avoids the thundering-herd of every cold template predicting the
// same number.
//
// Decisions use only deterministic inputs — the prediction, the tenant's
// quota and in-flight figures, the queue length, and the predicted-row
// ledger — never wall-clock measurements. Wall time from the priors feeds
// the retry-after / predicted-wait *hints* only.
//
// Shedding, not queueing, handles the two overload shapes where waiting is
// a lie: a tenant past its quota (its own backlog must not consume global
// queue slots) and a full global queue. Shed queries get kResourceExhausted
// plus a retry-after hint scaled by the current backlog.

#ifndef QPROG_SERVER_ADMISSION_H_
#define QPROG_SERVER_ADMISSION_H_

#include <cstddef>
#include <cstdint>

#include "obs/workload_stats.h"
#include "server/tenant.h"

namespace qprog {

struct AdmissionOptions {
  /// Seed for the cold-template prediction fallback. Fixing it fixes every
  /// admission decision for a fixed submission sequence.
  uint64_t seed = 0;

  /// Center of the cold-template prior, in buffered rows.
  uint64_t fallback_peak_rows = 256;

  /// Multiplier over the historical max peak: admission plans for a run
  /// somewhat worse than the worst observed.
  double headroom = 1.25;

  /// Global queue capacity; submissions past it are shed.
  size_t max_queue = 64;

  /// Base of the retry-after hint handed to shed queries; scaled by the
  /// backlog (queued + running + 1).
  uint64_t retry_after_base_ms = 10;
};

enum class AdmissionAction {
  kAdmit,  // capacity for it now: starts as soon as a session frees up
  kQueue,  // accepted, but waits behind earlier work or for memory
  kShed,   // rejected with kResourceExhausted + retry-after hint
};

const char* AdmissionActionToString(AdmissionAction action);

struct AdmissionDecision {
  AdmissionAction action = AdmissionAction::kAdmit;
  uint64_t predicted_peak_rows = 0;
  bool predicted_from_prior = false;  // true: template had history
  size_t queue_position = 0;          // kQueue: 0-based position at submit
  uint64_t retry_after_ms = 0;        // kShed: when to try again (hint)
  const char* reason = "";            // kShed: "tenant-quota" | "queue-full"
};

class AdmissionController {
 public:
  /// `priors` is borrowed and may be null (every template is then cold).
  AdmissionController(AdmissionOptions options,
                      const WorkloadStatsRegistry* priors);

  /// Predicted peak buffered rows for one run of `fingerprint`'s template.
  /// Sets `from_prior` (optional) to whether history existed.
  uint64_t PredictPeakRows(uint64_t fingerprint,
                           bool* from_prior = nullptr) const;

  /// Deterministic snapshot of server load at submission time.
  struct Load {
    size_t queued = 0;
    size_t running = 0;
    uint64_t inflight_predicted_rows = 0;  // sum of admitted predictions
    uint64_t pool_rows = 0;                // governor pool size
    uint64_t tenant_inflight = 0;          // this tenant's queued + running
    uint64_t tenant_inflight_predicted_rows = 0;
  };

  AdmissionDecision Decide(uint64_t fingerprint, const TenantQuota& quota,
                           const Load& load) const;

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  const WorkloadStatsRegistry* priors_;
};

}  // namespace qprog

#endif  // QPROG_SERVER_ADMISSION_H_
