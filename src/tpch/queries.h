// Hand-crafted physical plans for TPC-H Q1-Q22, mirroring typical
// decision-support plans (hash joins, hash aggregation, sorts; subqueries
// decorrelated into semi/anti joins and scalar-aggregate cross joins).
// Used by the paper's Table 2 (mu per query), Figure 3 (Q1) and Figure 6
// (Q21) reproductions.

#ifndef QPROG_TPCH_QUERIES_H_
#define QPROG_TPCH_QUERIES_H_

#include "common/statusor.h"
#include "exec/plan.h"
#include "storage/catalog.h"

namespace qprog {
namespace tpch {

/// Builds the plan for TPC-H query `q` (1-22) over `db` (which must have
/// been populated by GenerateTpch and must outlive the plan). Returns
/// InvalidArgument for unknown query numbers.
StatusOr<PhysicalPlan> BuildQuery(int q, const Database& db);

/// Query numbers with a plan available (1..22).
std::vector<int> AvailableQueries();

}  // namespace tpch
}  // namespace qprog

#endif  // QPROG_TPCH_QUERIES_H_
