// Internal plan-building helpers shared by the TPC-H query implementations.
// Not part of the public API.

#ifndef QPROG_TPCH_QUERIES_INTERNAL_H_
#define QPROG_TPCH_QUERIES_INTERNAL_H_

#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "storage/catalog.h"
#include "tpch/schema.h"

namespace qprog {
namespace tpch {
namespace internal {

/// An operator subtree plus its output arity, so join/aggregate builders can
/// compute column offsets mechanically.
struct Rel {
  OperatorPtr op;
  size_t arity = 0;
};

/// Leaf scan, optionally with a merged predicate; sets the planner row
/// estimate from the catalog.
Rel ScanRel(const Database& db, const std::string& table,
            ExprPtr predicate = nullptr);

/// sigma as a separate plan node.
Rel FilterRel(Rel in, ExprPtr predicate);

/// Hash join: `probe` streamed, `build` hashed; single-column equi-key.
/// Output columns: probe's, then build's (shifted by probe.arity).
/// `linear` marks key/foreign-key joins for the bounds tracker.
Rel HashJoinRel(Rel probe, Rel build, size_t probe_col, size_t build_col,
                JoinType jt = JoinType::kInner, bool linear = true,
                ExprPtr residual = nullptr, double est_rows = -1);

/// Two-column equi-key hash join.
Rel HashJoinRel2(Rel probe, Rel build, size_t pc1, size_t bc1, size_t pc2,
                 size_t bc2, JoinType jt = JoinType::kInner,
                 bool linear = true, ExprPtr residual = nullptr,
                 double est_rows = -1);

/// Hash aggregation. `keys` are (input column, output name) pairs; output
/// schema is keys then aggregates. `est_groups` seeds the dne driver total.
Rel GroupByRel(Rel in, std::vector<std::pair<size_t, std::string>> keys,
               std::vector<AggregateDesc> aggs, double est_groups);

/// Sort-based aggregation (Sort on the keys feeding a StreamAggregate) —
/// the plan style SQL Server favours for several TPC-H queries; the sort's
/// output getnexts are what push mu up for Q3/Q18-class plans (Table 2).
Rel SortedGroupByRel(Rel in, std::vector<std::pair<size_t, std::string>> keys,
                     std::vector<AggregateDesc> aggs, double est_groups,
                     double est_input = -1);

/// Sort by (column, descending) pairs.
Rel SortRel(Rel in, std::vector<std::pair<size_t, bool>> keys,
            double est_rows = -1);

Rel LimitRel(Rel in, uint64_t k);

Rel ProjectRel(Rel in, std::vector<ExprPtr> exprs,
               std::vector<std::string> names);

/// Nested-loops join (used for cross joins against one-row scalar
/// aggregates in Q11/Q15/Q22).
Rel NestedLoopRel(Rel outer, Rel inner, ExprPtr pred, JoinType jt,
                  double est_rows);

/// Aggregate-descriptor shorthands.
AggregateDesc CntStar(std::string name);
AggregateDesc SumOf(ExprPtr e, std::string name);
AggregateDesc AvgOf(ExprPtr e, std::string name);
AggregateDesc MinOf(ExprPtr e, std::string name);
AggregateDesc MaxOf(ExprPtr e, std::string name);
AggregateDesc CntOf(ExprPtr e, std::string name);
AggregateDesc CntDistinct(ExprPtr e, std::string name);

/// l_extendedprice * (1 - l_discount) with the given column offsets.
ExprPtr Revenue(size_t extendedprice_col, size_t discount_col);

// Query builders (queries.cc: 1-11; queries2.cc: 12-22).
PhysicalPlan BuildQ1(const Database& db);
PhysicalPlan BuildQ2(const Database& db);
PhysicalPlan BuildQ3(const Database& db);
PhysicalPlan BuildQ4(const Database& db);
PhysicalPlan BuildQ5(const Database& db);
PhysicalPlan BuildQ6(const Database& db);
PhysicalPlan BuildQ7(const Database& db);
PhysicalPlan BuildQ8(const Database& db);
PhysicalPlan BuildQ9(const Database& db);
PhysicalPlan BuildQ10(const Database& db);
PhysicalPlan BuildQ11(const Database& db);
PhysicalPlan BuildQ12(const Database& db);
PhysicalPlan BuildQ13(const Database& db);
PhysicalPlan BuildQ14(const Database& db);
PhysicalPlan BuildQ15(const Database& db);
PhysicalPlan BuildQ16(const Database& db);
PhysicalPlan BuildQ17(const Database& db);
PhysicalPlan BuildQ18(const Database& db);
PhysicalPlan BuildQ19(const Database& db);
PhysicalPlan BuildQ20(const Database& db);
PhysicalPlan BuildQ21(const Database& db);
PhysicalPlan BuildQ22(const Database& db);

}  // namespace internal
}  // namespace tpch
}  // namespace qprog

#endif  // QPROG_TPCH_QUERIES_INTERNAL_H_
