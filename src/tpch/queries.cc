#include "tpch/queries.h"

#include "common/strings.h"
#include "tpch/queries_internal.h"

namespace qprog {
namespace tpch {

namespace internal {

using qprog::eb::Add;
using qprog::eb::And;
using qprog::eb::Between;
using qprog::eb::Col;
using qprog::eb::DateLit;
using qprog::eb::Dbl;
using qprog::eb::Div;
using qprog::eb::Eq;
using qprog::eb::Ge;
using qprog::eb::Gt;
using qprog::eb::In;
using qprog::eb::Int;
using qprog::eb::Le;
using qprog::eb::Like;
using qprog::eb::Lit;
using qprog::eb::Lt;
using qprog::eb::Mul;
using qprog::eb::Ne;
using qprog::eb::NotLike;
using qprog::eb::Or;
using qprog::eb::Str;
using qprog::eb::Sub;
using qprog::eb::Year;

Rel ScanRel(const Database& db, const std::string& table, ExprPtr predicate) {
  const Table* t = db.GetTable(table);
  QPROG_CHECK_MSG(t != nullptr, "missing table %s", table.c_str());
  // Predicates are merged into the scan, as commercial plans do. Every
  // examined leaf row still costs one getnext (SeqScan's accounting), which
  // is what keeps Table 2's mu >= 1 while queries like Q4/Q6 stay near
  // mu = 1.0. Q1 uses an explicit FilterRel sigma instead — the plan shape
  // behind the paper's mu = 1.98.
  bool filtered = predicate != nullptr;
  auto scan = std::make_unique<SeqScan>(t, std::move(predicate));
  // Crude textbook estimate: a selection passes a third of its input.
  scan->set_estimated_rows(filtered
                               ? static_cast<double>(t->num_rows()) / 3.0
                               : static_cast<double>(t->num_rows()));
  return Rel{std::move(scan), t->schema().num_fields()};
}

Rel FilterRel(Rel in, ExprPtr predicate) {
  size_t arity = in.arity;
  auto f = std::make_unique<Filter>(std::move(in.op), std::move(predicate));
  return Rel{std::move(f), arity};
}

namespace {

Rel FinishHashJoin(std::unique_ptr<HashJoin> join, size_t probe_arity,
                   size_t build_arity, JoinType jt, bool linear,
                   double est_rows) {
  join->set_is_linear(linear);
  if (est_rows >= 0) join->set_estimated_rows(est_rows);
  size_t arity = (jt == JoinType::kLeftSemi || jt == JoinType::kLeftAnti)
                     ? probe_arity
                     : probe_arity + build_arity;
  return Rel{std::move(join), arity};
}

}  // namespace

Rel HashJoinRel(Rel probe, Rel build, size_t probe_col, size_t build_col,
                JoinType jt, bool linear, ExprPtr residual, double est_rows) {
  QPROG_CHECK(probe_col < probe.arity);
  QPROG_CHECK(build_col < build.arity);
  size_t pa = probe.arity;
  size_t ba = build.arity;
  std::vector<ExprPtr> pk, bk;
  pk.push_back(Col(probe_col));
  bk.push_back(Col(build_col));
  auto join = std::make_unique<HashJoin>(std::move(probe.op),
                                         std::move(build.op), std::move(pk),
                                         std::move(bk), jt, std::move(residual));
  return FinishHashJoin(std::move(join), pa, ba, jt, linear, est_rows);
}

Rel HashJoinRel2(Rel probe, Rel build, size_t pc1, size_t bc1, size_t pc2,
                 size_t bc2, JoinType jt, bool linear, ExprPtr residual,
                 double est_rows) {
  QPROG_CHECK(pc1 < probe.arity && pc2 < probe.arity);
  QPROG_CHECK(bc1 < build.arity && bc2 < build.arity);
  size_t pa = probe.arity;
  size_t ba = build.arity;
  std::vector<ExprPtr> pk, bk;
  pk.push_back(Col(pc1));
  pk.push_back(Col(pc2));
  bk.push_back(Col(bc1));
  bk.push_back(Col(bc2));
  auto join = std::make_unique<HashJoin>(std::move(probe.op),
                                         std::move(build.op), std::move(pk),
                                         std::move(bk), jt, std::move(residual));
  return FinishHashJoin(std::move(join), pa, ba, jt, linear, est_rows);
}

Rel GroupByRel(Rel in, std::vector<std::pair<size_t, std::string>> keys,
               std::vector<AggregateDesc> aggs, double est_groups) {
  std::vector<ExprPtr> key_exprs;
  std::vector<std::string> key_names;
  for (auto& [col, name] : keys) {
    QPROG_CHECK(col < in.arity);
    key_exprs.push_back(Col(col, name));
    key_names.push_back(name);
  }
  size_t arity = keys.size() + aggs.size();
  auto agg = std::make_unique<HashAggregate>(std::move(in.op),
                                             std::move(key_exprs),
                                             std::move(key_names),
                                             std::move(aggs));
  if (est_groups >= 0) agg->set_estimated_rows(est_groups);
  return Rel{std::move(agg), arity};
}

Rel SortedGroupByRel(Rel in, std::vector<std::pair<size_t, std::string>> keys,
                     std::vector<AggregateDesc> aggs, double est_groups,
                     double est_input) {
  std::vector<SortKey> sort_keys;
  std::vector<ExprPtr> key_exprs;
  std::vector<std::string> key_names;
  for (auto& [col, name] : keys) {
    QPROG_CHECK(col < in.arity);
    sort_keys.emplace_back(Col(col, name), false);
    key_exprs.push_back(Col(col, name));
    key_names.push_back(name);
  }
  auto sort = std::make_unique<Sort>(std::move(in.op), std::move(sort_keys));
  if (est_input >= 0) sort->set_estimated_rows(est_input);
  size_t arity = keys.size() + aggs.size();
  auto agg = std::make_unique<StreamAggregate>(std::move(sort),
                                               std::move(key_exprs),
                                               std::move(key_names),
                                               std::move(aggs));
  if (est_groups >= 0) agg->set_estimated_rows(est_groups);
  return Rel{std::move(agg), arity};
}

Rel SortRel(Rel in, std::vector<std::pair<size_t, bool>> keys,
            double est_rows) {
  std::vector<SortKey> sort_keys;
  for (auto& [col, desc] : keys) {
    QPROG_CHECK(col < in.arity);
    sort_keys.emplace_back(Col(col), desc);
  }
  size_t arity = in.arity;
  auto sort = std::make_unique<Sort>(std::move(in.op), std::move(sort_keys));
  if (est_rows >= 0) sort->set_estimated_rows(est_rows);
  return Rel{std::move(sort), arity};
}

Rel LimitRel(Rel in, uint64_t k) {
  size_t arity = in.arity;
  return Rel{std::make_unique<Limit>(std::move(in.op), k), arity};
}

Rel ProjectRel(Rel in, std::vector<ExprPtr> exprs,
               std::vector<std::string> names) {
  size_t arity = exprs.size();
  return Rel{std::make_unique<Project>(std::move(in.op), std::move(exprs),
                                       std::move(names)),
             arity};
}

Rel NestedLoopRel(Rel outer, Rel inner, ExprPtr pred, JoinType jt,
                  double est_rows) {
  size_t arity = (jt == JoinType::kLeftSemi || jt == JoinType::kLeftAnti)
                     ? outer.arity
                     : outer.arity + inner.arity;
  auto join = std::make_unique<NestedLoopsJoin>(
      std::move(outer.op), std::move(inner.op), std::move(pred), jt);
  if (est_rows >= 0) join->set_estimated_rows(est_rows);
  return Rel{std::move(join), arity};
}

AggregateDesc CntStar(std::string name) {
  return AggregateDesc(AggFunc::kCount, nullptr, std::move(name));
}
AggregateDesc SumOf(ExprPtr e, std::string name) {
  return AggregateDesc(AggFunc::kSum, std::move(e), std::move(name));
}
AggregateDesc AvgOf(ExprPtr e, std::string name) {
  return AggregateDesc(AggFunc::kAvg, std::move(e), std::move(name));
}
AggregateDesc MinOf(ExprPtr e, std::string name) {
  return AggregateDesc(AggFunc::kMin, std::move(e), std::move(name));
}
AggregateDesc MaxOf(ExprPtr e, std::string name) {
  return AggregateDesc(AggFunc::kMax, std::move(e), std::move(name));
}
AggregateDesc CntOf(ExprPtr e, std::string name) {
  return AggregateDesc(AggFunc::kCount, std::move(e), std::move(name));
}
AggregateDesc CntDistinct(ExprPtr e, std::string name) {
  return AggregateDesc(AggFunc::kCountDistinct, std::move(e), std::move(name));
}

ExprPtr Revenue(size_t extendedprice_col, size_t discount_col) {
  return Mul(Col(extendedprice_col), Sub(Dbl(1.0), Col(discount_col)));
}

// ---------------------------------------------------------------------------
// Q1: pricing summary report. scan(lineitem) -> sigma(shipdate) -> gamma ->
// sort. The sigma is a separate plan node, which is what gives the paper's
// mu = 1.98 shape (Figure 3).
PhysicalPlan BuildQ1(const Database& db) {
  Rel l = ScanRel(db, "lineitem");
  Rel f = FilterRel(std::move(l),
                    Le(Col(l::kShipdate), DateLit("1998-09-02")));
  std::vector<AggregateDesc> aggs;
  aggs.push_back(SumOf(Col(l::kQuantity), "sum_qty"));
  aggs.push_back(SumOf(Col(l::kExtendedprice), "sum_base_price"));
  aggs.push_back(
      SumOf(Revenue(l::kExtendedprice, l::kDiscount), "sum_disc_price"));
  aggs.push_back(SumOf(Mul(Revenue(l::kExtendedprice, l::kDiscount),
                           Add(Dbl(1.0), Col(l::kTax))),
                       "sum_charge"));
  aggs.push_back(AvgOf(Col(l::kQuantity), "avg_qty"));
  aggs.push_back(AvgOf(Col(l::kExtendedprice), "avg_price"));
  aggs.push_back(AvgOf(Col(l::kDiscount), "avg_disc"));
  aggs.push_back(CntStar("count_order"));
  Rel g = GroupByRel(std::move(f),
                     {{l::kReturnflag, "l_returnflag"},
                      {l::kLinestatus, "l_linestatus"}},
                     std::move(aggs), 6);
  Rel s = SortRel(std::move(g), {{0, false}, {1, false}}, 6);
  return PhysicalPlan(std::move(s.op));
}

// ---------------------------------------------------------------------------
// Q2: minimum-cost supplier. The MIN subquery is decorrelated into a
// group-by over the same supplier-in-Europe join, re-joined on
// (partkey, supplycost).
namespace {

// partsupp |x| supplier |x| nation |x| region('EUROPE').
// Output: partsupp 0-4, supplier 5-11, nation 12-15, region 16-18.
Rel EuropeanPartsupp(const Database& db) {
  Rel region = ScanRel(db, "region", Eq(Col(r::kName), Str("EUROPE")));
  Rel nr = HashJoinRel(ScanRel(db, "nation"), std::move(region),
                       n::kRegionkey, r::kRegionkey, JoinType::kInner, true,
                       nullptr, 5);
  Rel snr = HashJoinRel(ScanRel(db, "supplier"), std::move(nr), s::kNationkey,
                        0, JoinType::kInner, true, nullptr, 2000);
  return HashJoinRel(ScanRel(db, "partsupp"), std::move(snr), ps::kSuppkey, 0,
                     JoinType::kInner, true, nullptr, 160000);
}

}  // namespace

PhysicalPlan BuildQ2(const Database& db) {
  Rel part = ScanRel(
      db, "part",
      And(Eq(Col(p::kSize), Int(15)), Like(Col(p::kType), "%BRASS")));
  Rel eps = EuropeanPartsupp(db);
  // ps 0-4, s 5-11, n 12-15, r 16-18, part 19-27.
  Rel psp = HashJoinRel(std::move(eps), std::move(part), ps::kPartkey,
                        p::kPartkey, JoinType::kInner, true, nullptr, 1000);
  Rel eps2 = EuropeanPartsupp(db);
  std::vector<AggregateDesc> min_aggs;
  min_aggs.push_back(MinOf(Col(ps::kSupplycost), "min_cost"));
  Rel mins = GroupByRel(std::move(eps2), {{ps::kPartkey, "mk"}},
                        std::move(min_aggs), 40000);
  Rel joined = HashJoinRel2(std::move(psp), std::move(mins), ps::kPartkey, 0,
                            ps::kSupplycost, 1, JoinType::kInner, true,
                            nullptr, 500);
  std::vector<ExprPtr> out;
  out.push_back(Col(5 + s::kAcctbal));
  out.push_back(Col(5 + s::kName));
  out.push_back(Col(12 + n::kName));
  out.push_back(Col(19 + p::kPartkey));
  out.push_back(Col(19 + p::kMfgr));
  out.push_back(Col(5 + s::kAddress));
  out.push_back(Col(5 + s::kPhone));
  out.push_back(Col(5 + s::kComment));
  Rel proj = ProjectRel(std::move(joined), std::move(out),
                        {"s_acctbal", "s_name", "n_name", "p_partkey",
                         "p_mfgr", "s_address", "s_phone", "s_comment"});
  Rel sorted = SortRel(std::move(proj),
                       {{0, true}, {2, false}, {1, false}, {3, false}}, 500);
  return PhysicalPlan(LimitRel(std::move(sorted), 100).op);
}

// ---------------------------------------------------------------------------
// Q3: shipping priority.
PhysicalPlan BuildQ3(const Database& db) {
  Rel cust = ScanRel(db, "customer",
                     Eq(Col(c::kMktsegment), Str("BUILDING")));
  Rel orders = ScanRel(db, "orders",
                       Lt(Col(o::kOrderdate), DateLit("1995-03-15")));
  // orders 0-8, customer 9-16.
  Rel oc = HashJoinRel(std::move(orders), std::move(cust), o::kCustkey,
                       c::kCustkey, JoinType::kInner, true);
  Rel line = ScanRel(db, "lineitem",
                     Gt(Col(l::kShipdate), DateLit("1995-03-15")));
  // lineitem 0-15, orders 16-24, customer 25-32.
  Rel loc = HashJoinRel(std::move(line), std::move(oc), l::kOrderkey,
                        o::kOrderkey, JoinType::kInner, true);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(SumOf(Revenue(l::kExtendedprice, l::kDiscount), "revenue"));
  // Sort-based aggregation, the SQL Server plan style whose sort output is
  // what lifts Q3's mu toward the paper's 1.886.
  Rel g = SortedGroupByRel(std::move(loc),
                           {{0, "l_orderkey"},
                            {16 + o::kOrderdate, "o_orderdate"},
                            {16 + o::kShippriority, "o_shippriority"}},
                           std::move(aggs), 30000);
  Rel sorted = SortRel(std::move(g), {{3, true}, {1, false}}, 30000);
  return PhysicalPlan(LimitRel(std::move(sorted), 10).op);
}

// ---------------------------------------------------------------------------
// Q4: order priority checking. EXISTS subquery -> left-semi hash join.
PhysicalPlan BuildQ4(const Database& db) {
  Rel orders = ScanRel(db, "orders",
                       And(Ge(Col(o::kOrderdate), DateLit("1993-07-01")),
                           Lt(Col(o::kOrderdate), DateLit("1993-10-01"))));
  Rel line = ScanRel(db, "lineitem",
                     Lt(Col(l::kCommitdate), Col(l::kReceiptdate)));
  Rel semi = HashJoinRel(std::move(orders), std::move(line), o::kOrderkey,
                         l::kOrderkey, JoinType::kLeftSemi, true);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CntStar("order_count"));
  Rel g = GroupByRel(std::move(semi), {{o::kOrderpriority, "o_orderpriority"}},
                     std::move(aggs), 5);
  return PhysicalPlan(SortRel(std::move(g), {{0, false}}, 5).op);
}

// ---------------------------------------------------------------------------
// Q5: local supplier volume.
PhysicalPlan BuildQ5(const Database& db) {
  Rel region = ScanRel(db, "region", Eq(Col(r::kName), Str("ASIA")));
  Rel nr = HashJoinRel(ScanRel(db, "nation"), std::move(region),
                       n::kRegionkey, r::kRegionkey, JoinType::kInner, true,
                       nullptr, 5);
  // supplier 0-6, nation 7-10, region 11-13.
  Rel snr = HashJoinRel(ScanRel(db, "supplier"), std::move(nr), s::kNationkey,
                        0, JoinType::kInner, true, nullptr, 2000);
  // lineitem 0-15, supplier 16-22, nation 23-26, region 27-29.
  Rel ls = HashJoinRel(ScanRel(db, "lineitem"), std::move(snr), l::kSuppkey,
                       0, JoinType::kInner, true);
  Rel orders = ScanRel(db, "orders",
                       And(Ge(Col(o::kOrderdate), DateLit("1994-01-01")),
                           Lt(Col(o::kOrderdate), DateLit("1995-01-01"))));
  // + orders 30-38.
  Rel lso = HashJoinRel(std::move(ls), std::move(orders), 0, o::kOrderkey,
                        JoinType::kInner, true);
  // + customer 39-46; equi-join on custkey AND nationkey (local suppliers).
  Rel all = HashJoinRel2(std::move(lso), ScanRel(db, "customer"),
                         30 + o::kCustkey, c::kCustkey, 16 + s::kNationkey,
                         c::kNationkey, JoinType::kInner, true);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(SumOf(Revenue(l::kExtendedprice, l::kDiscount), "revenue"));
  Rel g = GroupByRel(std::move(all), {{23 + n::kName, "n_name"}},
                     std::move(aggs), 5);
  return PhysicalPlan(SortRel(std::move(g), {{1, true}}, 5).op);
}

// ---------------------------------------------------------------------------
// Q6: forecasting revenue change. Predicates merged into the scan — the plan
// a commercial engine produces; mu stays close to 1 (Table 2).
PhysicalPlan BuildQ6(const Database& db) {
  std::vector<ExprPtr> conj;
  conj.push_back(Ge(Col(l::kShipdate), DateLit("1994-01-01")));
  conj.push_back(Lt(Col(l::kShipdate), DateLit("1995-01-01")));
  conj.push_back(Ge(Col(l::kDiscount), Dbl(0.05)));
  conj.push_back(Le(Col(l::kDiscount), Dbl(0.07)));
  conj.push_back(Lt(Col(l::kQuantity), Dbl(24.0)));
  Rel line = ScanRel(db, "lineitem", And(std::move(conj)));
  std::vector<AggregateDesc> aggs;
  aggs.push_back(
      SumOf(Mul(Col(l::kExtendedprice), Col(l::kDiscount)), "revenue"));
  Rel g = GroupByRel(std::move(line), {}, std::move(aggs), 1);
  return PhysicalPlan(std::move(g.op));
}

// ---------------------------------------------------------------------------
// Q7: volume shipping between FRANCE and GERMANY.
PhysicalPlan BuildQ7(const Database& db) {
  std::vector<Value> pair = {Value::String("FRANCE"),
                             Value::String("GERMANY")};
  Rel line = ScanRel(db, "lineitem",
                     Between(Col(l::kShipdate), DateLit("1995-01-01"),
                             DateLit("1996-12-31")));
  Rel n1 = ScanRel(db, "nation", In(Col(n::kName), pair));
  // supplier 0-6, n1 7-10.
  Rel sn1 = HashJoinRel(ScanRel(db, "supplier"), std::move(n1), s::kNationkey,
                        n::kNationkey, JoinType::kInner, true, nullptr, 800);
  // lineitem 0-15, supplier 16-22, n1 23-26.
  Rel lsn1 = HashJoinRel(std::move(line), std::move(sn1), l::kSuppkey, 0,
                         JoinType::kInner, true);
  // + orders 27-35.
  Rel lo = HashJoinRel(std::move(lsn1), ScanRel(db, "orders"), 0,
                       o::kOrderkey, JoinType::kInner, true);
  Rel n2 = ScanRel(db, "nation", In(Col(n::kName), pair));
  // customer 0-7, n2 8-11.
  Rel cn2 = HashJoinRel(ScanRel(db, "customer"), std::move(n2), c::kNationkey,
                        n::kNationkey, JoinType::kInner, true, nullptr, 12000);
  // lo 0-35, cn2 36-47; nation-pair residual.
  ExprPtr residual = Or(And(Eq(Col(23 + n::kName), Str("FRANCE")),
                            Eq(Col(36 + 8 + n::kName), Str("GERMANY"))),
                        And(Eq(Col(23 + n::kName), Str("GERMANY")),
                            Eq(Col(36 + 8 + n::kName), Str("FRANCE"))));
  Rel all = HashJoinRel(std::move(lo), std::move(cn2), 27 + o::kCustkey,
                        c::kCustkey, JoinType::kInner, true,
                        std::move(residual));
  std::vector<ExprPtr> proj;
  proj.push_back(Col(23 + n::kName));
  proj.push_back(Col(36 + 8 + n::kName));
  proj.push_back(Year(Col(l::kShipdate)));
  proj.push_back(Revenue(l::kExtendedprice, l::kDiscount));
  Rel pr = ProjectRel(std::move(all), std::move(proj),
                      {"supp_nation", "cust_nation", "l_year", "volume"});
  std::vector<AggregateDesc> aggs;
  aggs.push_back(SumOf(Col(3), "revenue"));
  Rel g = GroupByRel(std::move(pr),
                     {{0, "supp_nation"}, {1, "cust_nation"}, {2, "l_year"}},
                     std::move(aggs), 4);
  return PhysicalPlan(
      SortRel(std::move(g), {{0, false}, {1, false}, {2, false}}, 4).op);
}

// ---------------------------------------------------------------------------
// Q8: national market share.
PhysicalPlan BuildQ8(const Database& db) {
  Rel part = ScanRel(db, "part",
                     Eq(Col(p::kType), Str("ECONOMY ANODIZED STEEL")));
  // lineitem 0-15, part 16-24.
  Rel lp = HashJoinRel(ScanRel(db, "lineitem"), std::move(part), l::kPartkey,
                       p::kPartkey, JoinType::kInner, true);
  Rel orders = ScanRel(db, "orders",
                       Between(Col(o::kOrderdate), DateLit("1995-01-01"),
                               DateLit("1996-12-31")));
  // + orders 25-33.
  Rel lpo = HashJoinRel(std::move(lp), std::move(orders), 0, o::kOrderkey,
                        JoinType::kInner, true);
  Rel region = ScanRel(db, "region", Eq(Col(r::kName), Str("AMERICA")));
  Rel n1r = HashJoinRel(ScanRel(db, "nation"), std::move(region),
                        n::kRegionkey, r::kRegionkey, JoinType::kInner, true,
                        nullptr, 5);
  // customer 0-7, n1 8-11, region 12-14.
  Rel cn1r = HashJoinRel(ScanRel(db, "customer"), std::move(n1r),
                         c::kNationkey, 0, JoinType::kInner, true, nullptr,
                         30000);
  // lpo 0-33, customer 34-41, n1 42-45, region 46-48.
  Rel lpoc = HashJoinRel(std::move(lpo), std::move(cn1r), 25 + o::kCustkey,
                         c::kCustkey, JoinType::kInner, true);
  // supplier 0-6, n2 7-10.
  Rel sn2 = HashJoinRel(ScanRel(db, "supplier"), ScanRel(db, "nation"),
                        s::kNationkey, n::kNationkey, JoinType::kInner, true);
  // lpoc 0-48, supplier 49-55, n2 56-59.
  Rel all = HashJoinRel(std::move(lpoc), std::move(sn2), l::kSuppkey, 0,
                        JoinType::kInner, true);
  std::vector<ExprPtr> proj;
  proj.push_back(Year(Col(25 + o::kOrderdate)));
  proj.push_back(Revenue(l::kExtendedprice, l::kDiscount));
  proj.push_back(Col(56 + n::kName));
  Rel pr = ProjectRel(std::move(all), std::move(proj),
                      {"o_year", "volume", "nation"});
  std::vector<AggregateDesc> aggs;
  std::vector<CaseExpr::Branch> branches;
  branches.push_back({Eq(Col(2), Str("BRAZIL")), Col(1)});
  aggs.push_back(SumOf(
      std::make_unique<CaseExpr>(std::move(branches), Dbl(0.0)),
      "brazil_volume"));
  aggs.push_back(SumOf(Col(1), "total_volume"));
  Rel g = GroupByRel(std::move(pr), {{0, "o_year"}}, std::move(aggs), 2);
  std::vector<ExprPtr> share;
  share.push_back(Col(0));
  share.push_back(Div(Col(1), Col(2)));
  Rel out =
      ProjectRel(std::move(g), std::move(share), {"o_year", "mkt_share"});
  return PhysicalPlan(SortRel(std::move(out), {{0, false}}, 2).op);
}

// ---------------------------------------------------------------------------
// Q9: product type profit measure.
PhysicalPlan BuildQ9(const Database& db) {
  Rel part = ScanRel(db, "part", Like(Col(p::kName), "%green%"));
  // lineitem 0-15, part 16-24.
  Rel lp = HashJoinRel(ScanRel(db, "lineitem"), std::move(part), l::kPartkey,
                       p::kPartkey, JoinType::kInner, true);
  // + supplier 25-31.
  Rel ls = HashJoinRel(std::move(lp), ScanRel(db, "supplier"), l::kSuppkey,
                       s::kSuppkey, JoinType::kInner, true);
  // + partsupp 32-36.
  Rel lsps = HashJoinRel2(std::move(ls), ScanRel(db, "partsupp"), l::kPartkey,
                          ps::kPartkey, l::kSuppkey, ps::kSuppkey,
                          JoinType::kInner, true);
  // + orders 37-45.
  Rel lo = HashJoinRel(std::move(lsps), ScanRel(db, "orders"), 0,
                       o::kOrderkey, JoinType::kInner, true);
  // + nation 46-49.
  Rel all = HashJoinRel(std::move(lo), ScanRel(db, "nation"),
                        25 + s::kNationkey, n::kNationkey, JoinType::kInner,
                        true);
  std::vector<ExprPtr> proj;
  proj.push_back(Col(46 + n::kName));
  proj.push_back(Year(Col(37 + o::kOrderdate)));
  proj.push_back(Sub(Revenue(l::kExtendedprice, l::kDiscount),
                     Mul(Col(32 + ps::kSupplycost), Col(l::kQuantity))));
  Rel pr = ProjectRel(std::move(all), std::move(proj),
                      {"nation", "o_year", "amount"});
  std::vector<AggregateDesc> aggs;
  aggs.push_back(SumOf(Col(2), "sum_profit"));
  Rel g = GroupByRel(std::move(pr), {{0, "nation"}, {1, "o_year"}},
                     std::move(aggs), 175);
  return PhysicalPlan(SortRel(std::move(g), {{0, false}, {1, true}}, 175).op);
}

// ---------------------------------------------------------------------------
// Q10: returned item reporting.
PhysicalPlan BuildQ10(const Database& db) {
  Rel orders = ScanRel(db, "orders",
                       And(Ge(Col(o::kOrderdate), DateLit("1993-10-01")),
                           Lt(Col(o::kOrderdate), DateLit("1994-01-01"))));
  // orders 0-8, customer 9-16.
  Rel oc = HashJoinRel(std::move(orders), ScanRel(db, "customer"),
                       o::kCustkey, c::kCustkey, JoinType::kInner, true);
  Rel line = ScanRel(db, "lineitem", Eq(Col(l::kReturnflag), Str("R")));
  // lineitem 0-15, orders 16-24, customer 25-32.
  Rel loc = HashJoinRel(std::move(line), std::move(oc), l::kOrderkey,
                        o::kOrderkey, JoinType::kInner, true);
  // + nation 33-36.
  Rel all = HashJoinRel(std::move(loc), ScanRel(db, "nation"),
                        25 + c::kNationkey, n::kNationkey, JoinType::kInner,
                        true);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(SumOf(Revenue(l::kExtendedprice, l::kDiscount), "revenue"));
  Rel g = GroupByRel(std::move(all),
                     {{25 + c::kCustkey, "c_custkey"},
                      {25 + c::kName, "c_name"},
                      {25 + c::kAcctbal, "c_acctbal"},
                      {25 + c::kPhone, "c_phone"},
                      {33 + n::kName, "n_name"},
                      {25 + c::kAddress, "c_address"},
                      {25 + c::kComment, "c_comment"}},
                     std::move(aggs), 20000);
  Rel sorted = SortRel(std::move(g), {{7, true}}, 20000);
  return PhysicalPlan(LimitRel(std::move(sorted), 20).op);
}

// ---------------------------------------------------------------------------
// Q11: important stock identification. The HAVING scalar subquery becomes a
// cross (nested-loops) join against a one-row scalar aggregate.
namespace {

// partsupp |x| supplier |x| nation('GERMANY').
// partsupp 0-4, supplier 5-11, nation 12-15.
Rel GermanPartsupp(const Database& db) {
  Rel nation = ScanRel(db, "nation", Eq(Col(n::kName), Str("GERMANY")));
  Rel sn = HashJoinRel(ScanRel(db, "supplier"), std::move(nation),
                       s::kNationkey, n::kNationkey, JoinType::kInner, true,
                       nullptr, 400);
  return HashJoinRel(ScanRel(db, "partsupp"), std::move(sn), ps::kSuppkey, 0,
                     JoinType::kInner, true, nullptr, 32000);
}

}  // namespace

PhysicalPlan BuildQ11(const Database& db) {
  ExprPtr value = Mul(Col(ps::kSupplycost), Col(ps::kAvailqty));
  std::vector<AggregateDesc> group_aggs;
  group_aggs.push_back(SumOf(value->Clone(), "value"));
  Rel grouped = GroupByRel(GermanPartsupp(db), {{ps::kPartkey, "ps_partkey"}},
                           std::move(group_aggs), 20000);
  std::vector<AggregateDesc> total_aggs;
  total_aggs.push_back(SumOf(value->Clone(), "total"));
  Rel total = GroupByRel(GermanPartsupp(db), {}, std::move(total_aggs), 1);
  std::vector<ExprPtr> scaled;
  scaled.push_back(Mul(Col(0), Dbl(0.0001)));
  Rel threshold =
      ProjectRel(std::move(total), std::move(scaled), {"threshold"});
  // The one-row scalar is the NL outer so its subplan runs exactly once.
  // threshold 0, grouped 1-2.
  Rel cross = NestedLoopRel(std::move(threshold), std::move(grouped), nullptr,
                            JoinType::kInner, 20000);
  Rel filtered = FilterRel(std::move(cross), Gt(Col(2), Col(0)));
  std::vector<ExprPtr> proj;
  proj.push_back(Col(1));
  proj.push_back(Col(2));
  Rel out = ProjectRel(std::move(filtered), std::move(proj),
                       {"ps_partkey", "value"});
  return PhysicalPlan(SortRel(std::move(out), {{1, true}}, 2000).op);
}

}  // namespace internal

StatusOr<PhysicalPlan> BuildQuery(int q, const Database& db) {
  switch (q) {
    case 1:
      return internal::BuildQ1(db);
    case 2:
      return internal::BuildQ2(db);
    case 3:
      return internal::BuildQ3(db);
    case 4:
      return internal::BuildQ4(db);
    case 5:
      return internal::BuildQ5(db);
    case 6:
      return internal::BuildQ6(db);
    case 7:
      return internal::BuildQ7(db);
    case 8:
      return internal::BuildQ8(db);
    case 9:
      return internal::BuildQ9(db);
    case 10:
      return internal::BuildQ10(db);
    case 11:
      return internal::BuildQ11(db);
    case 12:
      return internal::BuildQ12(db);
    case 13:
      return internal::BuildQ13(db);
    case 14:
      return internal::BuildQ14(db);
    case 15:
      return internal::BuildQ15(db);
    case 16:
      return internal::BuildQ16(db);
    case 17:
      return internal::BuildQ17(db);
    case 18:
      return internal::BuildQ18(db);
    case 19:
      return internal::BuildQ19(db);
    case 20:
      return internal::BuildQ20(db);
    case 21:
      return internal::BuildQ21(db);
    case 22:
      return internal::BuildQ22(db);
    default:
      return InvalidArgument(
          StringPrintf("no plan for TPC-H query %d (1-22 available)", q));
  }
}

std::vector<int> AvailableQueries() {
  std::vector<int> qs;
  for (int q = 1; q <= 22; ++q) qs.push_back(q);
  return qs;
}

}  // namespace tpch
}  // namespace qprog
