// Skewed TPC-H data generator.
//
// Mirrors the dbgen population rules (row counts per scale factor, value
// domains, date relationships, referential integrity) with the zipfian skew
// knob of the Microsoft skewed TPC-D generator the paper uses (ref [18]):
// `z` skews foreign-key choices (l_partkey, l_suppkey, o_custkey, nation
// keys) and several attribute choices. z = 0 degenerates to uniform dbgen.

#ifndef QPROG_TPCH_DBGEN_H_
#define QPROG_TPCH_DBGEN_H_

#include <cstdint>

#include "storage/catalog.h"

namespace qprog {
namespace tpch {

struct TpchConfig {
  double scale_factor = 0.01;  // 1.0 = the paper's 1GB (6M lineitems)
  double z = 2.0;              // zipfian skew, the paper uses z = 2
  uint64_t seed = 19940704;
  bool build_indexes = true;    // ordered indexes on primary/foreign keys
  bool collect_stats = true;    // per-table histograms
  size_t histogram_buckets = 32;
};

/// Populates `db` with the eight TPC-H tables. Row counts:
/// supplier 10000*SF, part 200000*SF, customer 150000*SF, orders
/// 1.5M*SF (10 per customer), lineitem 1..7 per order, partsupp 4 per part,
/// nation 25, region 5.
Status GenerateTpch(const TpchConfig& config, Database* db);

/// Expected base row counts for a scale factor (for tests).
uint64_t ExpectedSuppliers(double sf);
uint64_t ExpectedParts(double sf);
uint64_t ExpectedCustomers(double sf);
uint64_t ExpectedOrders(double sf);

}  // namespace tpch
}  // namespace qprog

#endif  // QPROG_TPCH_DBGEN_H_
