#include "tpch/schema.h"

namespace qprog {
namespace tpch {

Schema RegionSchema() {
  return Schema({{"r_regionkey", TypeId::kInt64},
                 {"r_name", TypeId::kString},
                 {"r_comment", TypeId::kString}});
}

Schema NationSchema() {
  return Schema({{"n_nationkey", TypeId::kInt64},
                 {"n_name", TypeId::kString},
                 {"n_regionkey", TypeId::kInt64},
                 {"n_comment", TypeId::kString}});
}

Schema SupplierSchema() {
  return Schema({{"s_suppkey", TypeId::kInt64},
                 {"s_name", TypeId::kString},
                 {"s_address", TypeId::kString},
                 {"s_nationkey", TypeId::kInt64},
                 {"s_phone", TypeId::kString},
                 {"s_acctbal", TypeId::kDouble},
                 {"s_comment", TypeId::kString}});
}

Schema PartSchema() {
  return Schema({{"p_partkey", TypeId::kInt64},
                 {"p_name", TypeId::kString},
                 {"p_mfgr", TypeId::kString},
                 {"p_brand", TypeId::kString},
                 {"p_type", TypeId::kString},
                 {"p_size", TypeId::kInt64},
                 {"p_container", TypeId::kString},
                 {"p_retailprice", TypeId::kDouble},
                 {"p_comment", TypeId::kString}});
}

Schema PartsuppSchema() {
  return Schema({{"ps_partkey", TypeId::kInt64},
                 {"ps_suppkey", TypeId::kInt64},
                 {"ps_availqty", TypeId::kInt64},
                 {"ps_supplycost", TypeId::kDouble},
                 {"ps_comment", TypeId::kString}});
}

Schema CustomerSchema() {
  return Schema({{"c_custkey", TypeId::kInt64},
                 {"c_name", TypeId::kString},
                 {"c_address", TypeId::kString},
                 {"c_nationkey", TypeId::kInt64},
                 {"c_phone", TypeId::kString},
                 {"c_acctbal", TypeId::kDouble},
                 {"c_mktsegment", TypeId::kString},
                 {"c_comment", TypeId::kString}});
}

Schema OrdersSchema() {
  return Schema({{"o_orderkey", TypeId::kInt64},
                 {"o_custkey", TypeId::kInt64},
                 {"o_orderstatus", TypeId::kString},
                 {"o_totalprice", TypeId::kDouble},
                 {"o_orderdate", TypeId::kDate},
                 {"o_orderpriority", TypeId::kString},
                 {"o_clerk", TypeId::kString},
                 {"o_shippriority", TypeId::kInt64},
                 {"o_comment", TypeId::kString}});
}

Schema LineitemSchema() {
  return Schema({{"l_orderkey", TypeId::kInt64},
                 {"l_partkey", TypeId::kInt64},
                 {"l_suppkey", TypeId::kInt64},
                 {"l_linenumber", TypeId::kInt64},
                 {"l_quantity", TypeId::kDouble},
                 {"l_extendedprice", TypeId::kDouble},
                 {"l_discount", TypeId::kDouble},
                 {"l_tax", TypeId::kDouble},
                 {"l_returnflag", TypeId::kString},
                 {"l_linestatus", TypeId::kString},
                 {"l_shipdate", TypeId::kDate},
                 {"l_commitdate", TypeId::kDate},
                 {"l_receiptdate", TypeId::kDate},
                 {"l_shipinstruct", TypeId::kString},
                 {"l_shipmode", TypeId::kString},
                 {"l_comment", TypeId::kString}});
}

}  // namespace tpch
}  // namespace qprog
