// TPC-H queries 12-22 (see queries.cc for 1-11 and the helper layer).

#include "tpch/queries_internal.h"

namespace qprog {
namespace tpch {
namespace internal {

using qprog::eb::Add;
using qprog::eb::And;
using qprog::eb::Between;
using qprog::eb::Col;
using qprog::eb::DateLit;
using qprog::eb::Dbl;
using qprog::eb::Div;
using qprog::eb::Eq;
using qprog::eb::Ge;
using qprog::eb::Gt;
using qprog::eb::In;
using qprog::eb::Int;
using qprog::eb::Le;
using qprog::eb::Like;
using qprog::eb::Lt;
using qprog::eb::Mul;
using qprog::eb::Ne;
using qprog::eb::NotLike;
using qprog::eb::Or;
using qprog::eb::Str;
using qprog::eb::Sub;
using qprog::eb::Substr;
using qprog::eb::Year;

// ---------------------------------------------------------------------------
// Q12: shipping modes and order priority.
PhysicalPlan BuildQ12(const Database& db) {
  std::vector<Value> modes = {Value::String("MAIL"), Value::String("SHIP")};
  std::vector<ExprPtr> conj;
  conj.push_back(In(Col(l::kShipmode), modes));
  conj.push_back(Lt(Col(l::kCommitdate), Col(l::kReceiptdate)));
  conj.push_back(Lt(Col(l::kShipdate), Col(l::kCommitdate)));
  conj.push_back(Ge(Col(l::kReceiptdate), DateLit("1994-01-01")));
  conj.push_back(Lt(Col(l::kReceiptdate), DateLit("1995-01-01")));
  Rel line = ScanRel(db, "lineitem", And(std::move(conj)));
  // lineitem 0-15, orders 16-24.
  Rel lo = HashJoinRel(std::move(line), ScanRel(db, "orders"), l::kOrderkey,
                       o::kOrderkey, JoinType::kInner, true);
  std::vector<Value> high = {Value::String("1-URGENT"),
                             Value::String("2-HIGH")};
  std::vector<AggregateDesc> aggs;
  {
    std::vector<CaseExpr::Branch> branches;
    branches.push_back({In(Col(16 + o::kOrderpriority), high), eb::Int(1)});
    aggs.push_back(SumOf(
        std::make_unique<CaseExpr>(std::move(branches), eb::Int(0)),
        "high_line_count"));
  }
  {
    std::vector<CaseExpr::Branch> branches;
    branches.push_back(
        {eb::NotIn(Col(16 + o::kOrderpriority), high), eb::Int(1)});
    aggs.push_back(SumOf(
        std::make_unique<CaseExpr>(std::move(branches), eb::Int(0)),
        "low_line_count"));
  }
  Rel g = GroupByRel(std::move(lo), {{l::kShipmode, "l_shipmode"}},
                     std::move(aggs), 2);
  return PhysicalPlan(SortRel(std::move(g), {{0, false}}, 2).op);
}

// ---------------------------------------------------------------------------
// Q13: customer distribution. LEFT OUTER JOIN preserved on the customer
// (probe) side; COUNT(o_orderkey) skips the NULL-extended rows.
PhysicalPlan BuildQ13(const Database& db) {
  Rel orders = ScanRel(db, "orders",
                       NotLike(Col(o::kComment), "%special%requests%"));
  // customer 0-7, orders 8-16.
  Rel couter = HashJoinRel(ScanRel(db, "customer"), std::move(orders),
                           c::kCustkey, o::kCustkey, JoinType::kLeftOuter,
                           true);
  std::vector<AggregateDesc> per_cust;
  per_cust.push_back(CntOf(Col(8 + o::kOrderkey), "c_count"));
  Rel counts = GroupByRel(std::move(couter), {{c::kCustkey, "c_custkey"}},
                          std::move(per_cust),
                          static_cast<double>(
                              db.GetTable("customer")->num_rows()));
  std::vector<AggregateDesc> dist;
  dist.push_back(CntStar("custdist"));
  Rel g = GroupByRel(std::move(counts), {{1, "c_count"}}, std::move(dist), 50);
  return PhysicalPlan(SortRel(std::move(g), {{1, true}, {0, true}}, 50).op);
}

// ---------------------------------------------------------------------------
// Q14: promotion effect.
PhysicalPlan BuildQ14(const Database& db) {
  Rel line = ScanRel(db, "lineitem",
                     And(Ge(Col(l::kShipdate), DateLit("1995-09-01")),
                         Lt(Col(l::kShipdate), DateLit("1995-10-01"))));
  // lineitem 0-15, part 16-24.
  Rel lp = HashJoinRel(std::move(line), ScanRel(db, "part"), l::kPartkey,
                       p::kPartkey, JoinType::kInner, true);
  std::vector<AggregateDesc> aggs;
  {
    std::vector<CaseExpr::Branch> branches;
    branches.push_back({Like(Col(16 + p::kType), "PROMO%"),
                        Revenue(l::kExtendedprice, l::kDiscount)});
    aggs.push_back(SumOf(
        std::make_unique<CaseExpr>(std::move(branches), Dbl(0.0)),
        "promo_revenue"));
  }
  aggs.push_back(SumOf(Revenue(l::kExtendedprice, l::kDiscount), "total"));
  Rel g = GroupByRel(std::move(lp), {}, std::move(aggs), 1);
  std::vector<ExprPtr> out;
  out.push_back(Mul(Dbl(100.0), Div(Col(0), Col(1))));
  return PhysicalPlan(
      ProjectRel(std::move(g), std::move(out), {"promo_revenue"}).op);
}

// ---------------------------------------------------------------------------
// Q15: top supplier. The revenue view is materialized twice: once grouped,
// once reduced to its max, equated via cross join + filter.
namespace {

Rel RevenueView(const Database& db) {
  Rel line = ScanRel(db, "lineitem",
                     And(Ge(Col(l::kShipdate), DateLit("1996-01-01")),
                         Lt(Col(l::kShipdate), DateLit("1996-04-01"))));
  std::vector<AggregateDesc> aggs;
  aggs.push_back(
      SumOf(Revenue(l::kExtendedprice, l::kDiscount), "total_revenue"));
  return GroupByRel(std::move(line), {{l::kSuppkey, "supplier_no"}},
                    std::move(aggs),
                    static_cast<double>(db.GetTable("supplier")->num_rows()));
}

}  // namespace

PhysicalPlan BuildQ15(const Database& db) {
  Rel view = RevenueView(db);
  std::vector<AggregateDesc> max_aggs;
  max_aggs.push_back(MaxOf(Col(1), "max_revenue"));
  Rel max_rev = GroupByRel(RevenueView(db), {}, std::move(max_aggs), 1);
  // The one-row max is the NL outer so the view subplan runs exactly once.
  // max 0, view (supplier_no, total_revenue) 1-2.
  Rel cross = NestedLoopRel(std::move(max_rev), std::move(view), nullptr,
                            JoinType::kInner, 1);
  Rel top = FilterRel(std::move(cross), Eq(Col(2), Col(0)));
  // supplier 0-6, top 7-9.
  Rel sj = HashJoinRel(ScanRel(db, "supplier"), std::move(top), s::kSuppkey,
                       /*build supplier_no=*/1, JoinType::kInner, true,
                       nullptr, 1);
  std::vector<ExprPtr> out;
  out.push_back(Col(s::kSuppkey));
  out.push_back(Col(s::kName));
  out.push_back(Col(s::kAddress));
  out.push_back(Col(s::kPhone));
  out.push_back(Col(7 + 2));
  Rel proj = ProjectRel(
      std::move(sj), std::move(out),
      {"s_suppkey", "s_name", "s_address", "s_phone", "total_revenue"});
  return PhysicalPlan(SortRel(std::move(proj), {{0, false}}, 1).op);
}

// ---------------------------------------------------------------------------
// Q16: parts/supplier relationship. NOT EXISTS -> left-anti hash join.
PhysicalPlan BuildQ16(const Database& db) {
  std::vector<Value> sizes;
  for (int64_t sz : {49, 14, 23, 45, 19, 3, 36, 9}) {
    sizes.push_back(Value::Int64(sz));
  }
  std::vector<ExprPtr> conj;
  conj.push_back(Ne(Col(p::kBrand), Str("Brand#45")));
  conj.push_back(NotLike(Col(p::kType), "MEDIUM POLISHED%"));
  conj.push_back(In(Col(p::kSize), sizes));
  Rel part = ScanRel(db, "part", And(std::move(conj)));
  // partsupp 0-4, part 5-13.
  Rel psp = HashJoinRel(ScanRel(db, "partsupp"), std::move(part),
                        ps::kPartkey, p::kPartkey, JoinType::kInner, true);
  Rel bad_suppliers = ScanRel(
      db, "supplier", Like(Col(s::kComment), "%Customer%Complaints%"));
  Rel anti = HashJoinRel(std::move(psp), std::move(bad_suppliers),
                         ps::kSuppkey, s::kSuppkey, JoinType::kLeftAnti, true);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CntDistinct(Col(ps::kSuppkey), "supplier_cnt"));
  Rel g = GroupByRel(std::move(anti),
                     {{5 + p::kBrand, "p_brand"},
                      {5 + p::kType, "p_type"},
                      {5 + p::kSize, "p_size"}},
                     std::move(aggs), 5000);
  return PhysicalPlan(
      SortRel(std::move(g), {{3, true}, {0, false}, {1, false}, {2, false}},
              5000)
          .op);
}

// ---------------------------------------------------------------------------
// Q17: small-quantity-order revenue. Correlated AVG subquery decorrelated
// into a per-part aggregate joined back on partkey.
PhysicalPlan BuildQ17(const Database& db) {
  Rel part = ScanRel(db, "part",
                     And(Eq(Col(p::kBrand), Str("Brand#23")),
                         Eq(Col(p::kContainer), Str("MED BOX"))));
  // lineitem 0-15, part 16-24.
  Rel lp = HashJoinRel(ScanRel(db, "lineitem"), std::move(part), l::kPartkey,
                       p::kPartkey, JoinType::kInner, true);
  std::vector<AggregateDesc> avg_aggs;
  avg_aggs.push_back(AvgOf(Col(l::kQuantity), "avg_qty"));
  Rel avgq = GroupByRel(ScanRel(db, "lineitem"),
                        {{l::kPartkey, "partkey"}}, std::move(avg_aggs),
                        static_cast<double>(db.GetTable("part")->num_rows()));
  std::vector<ExprPtr> scaled;
  scaled.push_back(Col(0));
  scaled.push_back(Mul(Dbl(0.2), Col(1)));
  Rel avg_scaled = ProjectRel(std::move(avgq), std::move(scaled),
                              {"partkey", "qty_threshold"});
  // lp 0-24, avg 25-26.
  Rel joined = HashJoinRel(std::move(lp), std::move(avg_scaled), l::kPartkey,
                           0, JoinType::kInner, true);
  Rel small = FilterRel(std::move(joined), Lt(Col(l::kQuantity), Col(26)));
  std::vector<AggregateDesc> aggs;
  aggs.push_back(SumOf(Col(l::kExtendedprice), "sum_price"));
  Rel g = GroupByRel(std::move(small), {}, std::move(aggs), 1);
  std::vector<ExprPtr> out;
  out.push_back(Div(Col(0), Dbl(7.0)));
  return PhysicalPlan(
      ProjectRel(std::move(g), std::move(out), {"avg_yearly"}).op);
}

// ---------------------------------------------------------------------------
// Q18: large volume customer. lineitem is scanned twice (group then join),
// which is what pushes mu toward the paper's 2.77.
PhysicalPlan BuildQ18(const Database& db) {
  std::vector<AggregateDesc> qty_aggs;
  qty_aggs.push_back(SumOf(Col(l::kQuantity), "sum_qty"));
  // Sort-based aggregation over the full lineitem table: the sorted stream
  // is re-emitted in full, which (with the second lineitem scan below) is
  // what drives the paper's mu = 2.771 for this query.
  Rel per_order = SortedGroupByRel(
      ScanRel(db, "lineitem"), {{l::kOrderkey, "orderkey"}},
      std::move(qty_aggs),
      static_cast<double>(db.GetTable("orders")->num_rows()),
      static_cast<double>(db.GetTable("lineitem")->num_rows()));
  Rel big = FilterRel(std::move(per_order), Gt(Col(1), Dbl(300.0)));
  // orders 0-8, big 9-10.
  Rel ob = HashJoinRel(ScanRel(db, "orders"), std::move(big), o::kOrderkey, 0,
                       JoinType::kInner, true, nullptr, 100);
  // + customer 11-18.
  Rel oc = HashJoinRel(std::move(ob), ScanRel(db, "customer"), o::kCustkey,
                       c::kCustkey, JoinType::kInner, true, nullptr, 100);
  // lineitem 0-15, orders 16-24, big 25-26, customer 27-34.
  Rel all = HashJoinRel(ScanRel(db, "lineitem"), std::move(oc), l::kOrderkey,
                        o::kOrderkey, JoinType::kInner, true, nullptr, 400);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(SumOf(Col(l::kQuantity), "sum_qty"));
  Rel g = GroupByRel(std::move(all),
                     {{27 + c::kName, "c_name"},
                      {27 + c::kCustkey, "c_custkey"},
                      {16 + o::kOrderkey, "o_orderkey"},
                      {16 + o::kOrderdate, "o_orderdate"},
                      {16 + o::kTotalprice, "o_totalprice"}},
                     std::move(aggs), 100);
  Rel sorted = SortRel(std::move(g), {{4, true}, {3, false}}, 100);
  return PhysicalPlan(LimitRel(std::move(sorted), 100).op);
}

// ---------------------------------------------------------------------------
// Q19: discounted revenue (disjunction of brand/container/quantity brackets).
namespace {

ExprPtr Q19Bracket(const char* brand, std::vector<Value> containers,
                   double qmin, int64_t size_max) {
  std::vector<ExprPtr> conj;
  conj.push_back(Eq(Col(16 + p::kBrand), Str(brand)));
  conj.push_back(In(Col(16 + p::kContainer), std::move(containers)));
  conj.push_back(Ge(Col(l::kQuantity), Dbl(qmin)));
  conj.push_back(Le(Col(l::kQuantity), Dbl(qmin + 10)));
  conj.push_back(Between(Col(16 + p::kSize), Int(1), Int(size_max)));
  return And(std::move(conj));
}

}  // namespace

PhysicalPlan BuildQ19(const Database& db) {
  std::vector<Value> air = {Value::String("AIR"), Value::String("REG AIR")};
  Rel line = ScanRel(db, "lineitem",
                     And(Eq(Col(l::kShipinstruct), Str("DELIVER IN PERSON")),
                         In(Col(l::kShipmode), air)));
  std::vector<ExprPtr> brackets;
  brackets.push_back(Q19Bracket(
      "Brand#12",
      {Value::String("SM CASE"), Value::String("SM BOX"),
       Value::String("SM PACK"), Value::String("SM PKG")},
      1, 5));
  brackets.push_back(Q19Bracket(
      "Brand#23",
      {Value::String("MED BAG"), Value::String("MED BOX"),
       Value::String("MED PKG"), Value::String("MED PACK")},
      10, 10));
  brackets.push_back(Q19Bracket(
      "Brand#34",
      {Value::String("LG CASE"), Value::String("LG BOX"),
       Value::String("LG PACK"), Value::String("LG PKG")},
      20, 15));
  // lineitem 0-15, part 16-24.
  Rel lp = HashJoinRel(std::move(line), ScanRel(db, "part"), l::kPartkey,
                       p::kPartkey, JoinType::kInner, true,
                       Or(std::move(brackets)));
  std::vector<AggregateDesc> aggs;
  aggs.push_back(SumOf(Revenue(l::kExtendedprice, l::kDiscount), "revenue"));
  Rel g = GroupByRel(std::move(lp), {}, std::move(aggs), 1);
  return PhysicalPlan(std::move(g.op));
}

// ---------------------------------------------------------------------------
// Q20: potential part promotion. Nested EXISTS/IN chain as semi joins.
PhysicalPlan BuildQ20(const Database& db) {
  Rel forest_parts = ScanRel(db, "part", Like(Col(p::kName), "forest%"));
  Rel ps_semi = HashJoinRel(ScanRel(db, "partsupp"), std::move(forest_parts),
                            ps::kPartkey, p::kPartkey, JoinType::kLeftSemi,
                            true);
  Rel line = ScanRel(db, "lineitem",
                     And(Ge(Col(l::kShipdate), DateLit("1994-01-01")),
                         Lt(Col(l::kShipdate), DateLit("1995-01-01"))));
  std::vector<AggregateDesc> qty_aggs;
  qty_aggs.push_back(SumOf(Col(l::kQuantity), "sum_qty"));
  Rel qty = GroupByRel(std::move(line),
                       {{l::kPartkey, "partkey"}, {l::kSuppkey, "suppkey"}},
                       std::move(qty_aggs), 50000);
  std::vector<ExprPtr> scaled;
  scaled.push_back(Col(0));
  scaled.push_back(Col(1));
  scaled.push_back(Mul(Dbl(0.5), Col(2)));
  Rel qty_scaled = ProjectRel(std::move(qty), std::move(scaled),
                              {"partkey", "suppkey", "half_qty"});
  // partsupp 0-4, qty 5-7.
  Rel psq = HashJoinRel2(std::move(ps_semi), std::move(qty_scaled),
                         ps::kPartkey, 0, ps::kSuppkey, 1, JoinType::kInner,
                         true);
  Rel enough = FilterRel(std::move(psq), Gt(Col(ps::kAvailqty), Col(7)));
  Rel s_semi = HashJoinRel(ScanRel(db, "supplier"), std::move(enough),
                           s::kSuppkey, ps::kSuppkey, JoinType::kLeftSemi,
                           true);
  Rel canada = ScanRel(db, "nation", Eq(Col(n::kName), Str("CANADA")));
  // supplier 0-6, nation 7-10.
  Rel sn = HashJoinRel(std::move(s_semi), std::move(canada), s::kNationkey,
                       n::kNationkey, JoinType::kInner, true);
  std::vector<ExprPtr> out;
  out.push_back(Col(s::kName));
  out.push_back(Col(s::kAddress));
  Rel proj =
      ProjectRel(std::move(sn), std::move(out), {"s_name", "s_address"});
  return PhysicalPlan(SortRel(std::move(proj), {{0, false}}, 100).op);
}

// ---------------------------------------------------------------------------
// Q21: suppliers who kept orders waiting. The EXISTS becomes a semi join
// with a suppkey-inequality residual; the NOT EXISTS an anti join. This is
// the paper's Figure 6 query (pmax ratio error over execution).
PhysicalPlan BuildQ21(const Database& db) {
  // The late-delivery selections are explicit sigma nodes (their ~50%-pass
  // outputs are getnexts), one of the drivers of Q21's high paper mu.
  Rel l1 = FilterRel(ScanRel(db, "lineitem"),
                     Gt(Col(l::kReceiptdate), Col(l::kCommitdate)));
  // lineitem 0-15, supplier 16-22.
  Rel ls = HashJoinRel(std::move(l1), ScanRel(db, "supplier"), l::kSuppkey,
                       s::kSuppkey, JoinType::kInner, true);
  Rel orders = ScanRel(db, "orders", Eq(Col(o::kOrderstatus), Str("F")));
  // + orders 23-31.
  Rel lso = HashJoinRel(std::move(ls), std::move(orders), 0, o::kOrderkey,
                        JoinType::kInner, true);
  Rel saudi = ScanRel(db, "nation", Eq(Col(n::kName), Str("SAUDI ARABIA")));
  // + nation 32-35.
  Rel lson = HashJoinRel(std::move(lso), std::move(saudi), 16 + s::kNationkey,
                         n::kNationkey, JoinType::kInner, true);
  // EXISTS l2: other supplier shipped in the same order.
  Rel semi = HashJoinRel(std::move(lson), ScanRel(db, "lineitem"), 0,
                         l::kOrderkey, JoinType::kLeftSemi, true,
                         Ne(Col(36 + l::kSuppkey), Col(l::kSuppkey)));
  // NOT EXISTS l3: no *other late* supplier in the same order.
  Rel late = FilterRel(ScanRel(db, "lineitem"),
                       Gt(Col(l::kReceiptdate), Col(l::kCommitdate)));
  Rel anti = HashJoinRel(std::move(semi), std::move(late), 0, l::kOrderkey,
                         JoinType::kLeftAnti, true,
                         Ne(Col(36 + l::kSuppkey), Col(l::kSuppkey)));
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CntStar("numwait"));
  Rel g = GroupByRel(std::move(anti), {{16 + s::kName, "s_name"}},
                     std::move(aggs), 400);
  Rel sorted = SortRel(std::move(g), {{1, true}, {0, false}}, 400);
  return PhysicalPlan(LimitRel(std::move(sorted), 100).op);
}

// ---------------------------------------------------------------------------
// Q22: global sales opportunity. Scalar AVG via cross join; NOT EXISTS as
// anti join on orders.
PhysicalPlan BuildQ22(const Database& db) {
  std::vector<Value> codes;
  for (const char* code : {"13", "31", "23", "29", "30", "18", "17"}) {
    codes.push_back(Value::String(code));
  }
  Rel pos_balance = ScanRel(
      db, "customer",
      And(Gt(Col(c::kAcctbal), Dbl(0.0)),
          In(Substr(Col(c::kPhone), 1, 2), codes)));
  std::vector<AggregateDesc> avg_aggs;
  avg_aggs.push_back(AvgOf(Col(c::kAcctbal), "avg_bal"));
  Rel avg_bal = GroupByRel(std::move(pos_balance), {}, std::move(avg_aggs), 1);

  Rel cust = ScanRel(db, "customer",
                     In(Substr(Col(c::kPhone), 1, 2), codes));
  // The one-row average is the NL outer so its subplan runs exactly once.
  // avg 0, customer 1-8.
  Rel cross = NestedLoopRel(std::move(avg_bal), std::move(cust), nullptr,
                            JoinType::kInner, 10000);
  Rel rich = FilterRel(std::move(cross), Gt(Col(1 + c::kAcctbal), Col(0)));
  Rel anti = HashJoinRel(std::move(rich), ScanRel(db, "orders"),
                         1 + c::kCustkey, o::kCustkey, JoinType::kLeftAnti,
                         true);
  std::vector<ExprPtr> proj;
  proj.push_back(Substr(Col(1 + c::kPhone), 1, 2));
  proj.push_back(Col(1 + c::kAcctbal));
  Rel pr = ProjectRel(std::move(anti), std::move(proj),
                      {"cntrycode", "c_acctbal"});
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CntStar("numcust"));
  aggs.push_back(SumOf(Col(1), "totacctbal"));
  Rel g = GroupByRel(std::move(pr), {{0, "cntrycode"}}, std::move(aggs), 7);
  return PhysicalPlan(SortRel(std::move(g), {{0, false}}, 7).op);
}

}  // namespace internal
}  // namespace tpch
}  // namespace qprog
