#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <utility>

#include "common/macros.h"
#include "common/random.h"
#include "common/strings.h"
#include "common/zipf.h"
#include "stats/table_stats.h"
#include "tpch/schema.h"
#include "types/date.h"

namespace qprog {
namespace tpch {

namespace {

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// Region of each nation, per the dbgen mapping.
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipmodes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                            "FOB"};
const char* kInstructions[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kTypeSyllable1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                                "ECONOMY", "PROMO"};
const char* kTypeSyllable2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                                "BRUSHED"};
const char* kTypeSyllable3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainerSyllable1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainerSyllable2[] = {"CASE", "BOX", "BAG", "JAR", "PKG",
                                     "PACK", "CAN", "DRUM"};
const char* kColors[] = {"almond",    "antique",   "aquamarine", "azure",
                         "beige",     "bisque",    "black",      "blanched",
                         "blue",      "blush",     "brown",      "burlywood",
                         "burnished", "chartreuse", "chiffon",   "chocolate",
                         "coral",     "cornflower", "cornsilk",  "cream",
                         "cyan",      "dark",      "deep",       "dim",
                         "dodger",    "drab",      "firebrick",  "floral",
                         "forest",    "frosted",   "gainsboro",  "ghost",
                         "goldenrod", "green",     "grey",       "honeydew",
                         "hot",       "hotpink",   "indian",     "ivory",
                         "khaki",     "lace",      "lavender",   "lawn",
                         "lemon",     "light",     "lime",       "linen"};
const char* kCommentWords[] = {
    "furiously", "quickly",  "carefully", "express", "pending",  "final",
    "ironic",    "regular",  "unusual",   "bold",    "blithely", "daring",
    "accounts",  "deposits", "packages",  "theodolites", "instructions",
    "requests",  "foxes",    "platelets", "pinto",   "beans",    "asymptotes",
    "dependencies", "waters", "excuses",  "sauternes", "courts",  "ideas"};

constexpr int64_t kOrdersPerCustomer = 10;
constexpr int64_t kPartsuppPerPart = 4;

class TpchGenerator {
 public:
  TpchGenerator(const TpchConfig& config, Database* db)
      : config_(config),
        db_(db),
        rng_(config.seed),
        suppliers_(ExpectedSuppliers(config.scale_factor)),
        parts_(ExpectedParts(config.scale_factor)),
        customers_(ExpectedCustomers(config.scale_factor)),
        orders_(ExpectedOrders(config.scale_factor)),
        part_zipf_(parts_, config.z),
        supp_zipf_(suppliers_, config.z),
        cust_zipf_(customers_, config.z),
        nation_zipf_(25, config.z),
        qty_zipf_(50, config.z) {}

  Status Run() {
    QPROG_RETURN_IF_ERROR(GenRegion());
    QPROG_RETURN_IF_ERROR(GenNation());
    QPROG_RETURN_IF_ERROR(GenSupplier());
    QPROG_RETURN_IF_ERROR(GenPart());
    QPROG_RETURN_IF_ERROR(GenPartsupp());
    QPROG_RETURN_IF_ERROR(GenCustomer());
    QPROG_RETURN_IF_ERROR(GenOrdersAndLineitem());
    if (config_.build_indexes) QPROG_RETURN_IF_ERROR(BuildIndexes());
    if (config_.collect_stats) CollectStats();
    return OkStatus();
  }

 private:
  std::string Comment(size_t min_words, size_t max_words) {
    size_t n = min_words + rng_.Uniform(max_words - min_words + 1);
    std::string out;
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) out += " ";
      out += kCommentWords[rng_.Uniform(std::size(kCommentWords))];
    }
    // A small fraction of comments carry the phrases Q13 and Q16 filter on.
    if (rng_.Bernoulli(0.01)) out += " special requests";
    if (rng_.Bernoulli(0.005)) out += " Customer Complaints";
    return out;
  }

  std::string Phone(int64_t nationkey) {
    return StringPrintf("%d-%03d-%03d-%04d", static_cast<int>(10 + nationkey),
                        static_cast<int>(rng_.UniformInt(100, 999)),
                        static_cast<int>(rng_.UniformInt(100, 999)),
                        static_cast<int>(rng_.UniformInt(1000, 9999)));
  }

  // zipf-skewed choice in [0, n): rank drawn from the distribution, mapped
  // through a fixed pseudo-random permutation-ish multiplier so that the
  // popular keys are spread across the key domain (as the skewed dbgen does).
  int64_t SkewedKey(const ZipfDistribution& zipf, int64_t n) {
    uint64_t rank = zipf.Sample(&rng_);
    // Affine map with a multiplier coprime to n spreads ranks over the
    // domain deterministically.
    return static_cast<int64_t>((rank * 2654435761ULL + 40503ULL) %
                                static_cast<uint64_t>(n));
  }

  Status GenRegion() {
    Table table("region", RegionSchema());
    for (int64_t i = 0; i < 5; ++i) {
      table.AppendRow({Value::Int64(i), Value::String(kRegions[i]),
                       Value::String(Comment(3, 8))});
    }
    return db_->AddTable(std::move(table)).status();
  }

  Status GenNation() {
    Table table("nation", NationSchema());
    for (int64_t i = 0; i < 25; ++i) {
      table.AppendRow({Value::Int64(i), Value::String(kNations[i]),
                       Value::Int64(kNationRegion[i]),
                       Value::String(Comment(3, 8))});
    }
    return db_->AddTable(std::move(table)).status();
  }

  Status GenSupplier() {
    Table table("supplier", SupplierSchema());
    table.Reserve(suppliers_);
    for (int64_t i = 1; i <= static_cast<int64_t>(suppliers_); ++i) {
      int64_t nation = SkewedKey(nation_zipf_, 25);
      table.AppendRow({Value::Int64(i),
                       Value::String(StringPrintf("Supplier#%09lld",
                                                  static_cast<long long>(i))),
                       Value::String(Comment(2, 4)),
                       Value::Int64(nation),
                       Value::String(Phone(nation)),
                       Value::Double(rng_.UniformDouble(-999.99, 9999.99)),
                       Value::String(Comment(5, 12))});
    }
    return db_->AddTable(std::move(table)).status();
  }

  Status GenPart() {
    Table table("part", PartSchema());
    table.Reserve(parts_);
    for (int64_t i = 1; i <= static_cast<int64_t>(parts_); ++i) {
      int m = static_cast<int>(rng_.UniformInt(1, 5));
      int nbrand = static_cast<int>(rng_.UniformInt(1, 5));
      std::string name =
          std::string(kColors[rng_.Uniform(std::size(kColors))]) + " " +
          kColors[rng_.Uniform(std::size(kColors))];
      std::string type =
          std::string(kTypeSyllable1[rng_.Uniform(6)]) + " " +
          kTypeSyllable2[rng_.Uniform(5)] + " " + kTypeSyllable3[rng_.Uniform(5)];
      std::string container =
          std::string(kContainerSyllable1[rng_.Uniform(5)]) + " " +
          kContainerSyllable2[rng_.Uniform(8)];
      table.AppendRow(
          {Value::Int64(i), Value::String(std::move(name)),
           Value::String(StringPrintf("Manufacturer#%d", m)),
           Value::String(StringPrintf("Brand#%d%d", m, nbrand)),
           Value::String(std::move(type)),
           Value::Int64(1 + static_cast<int64_t>(qty_zipf_.Sample(&rng_))),
           Value::String(std::move(container)),
           Value::Double(900.0 + static_cast<double>(i % 1000) + 0.01 *
                                     static_cast<double>(i % 100)),
           Value::String(Comment(2, 6))});
    }
    return db_->AddTable(std::move(table)).status();
  }

  Status GenPartsupp() {
    Table table("partsupp", PartsuppSchema());
    table.Reserve(parts_ * kPartsuppPerPart);
    for (int64_t pk = 1; pk <= static_cast<int64_t>(parts_); ++pk) {
      for (int64_t j = 0; j < kPartsuppPerPart; ++j) {
        int64_t sk = 1 + SkewedKey(supp_zipf_, static_cast<int64_t>(suppliers_));
        table.AppendRow({Value::Int64(pk), Value::Int64(sk),
                         Value::Int64(rng_.UniformInt(1, 9999)),
                         Value::Double(rng_.UniformDouble(1.0, 1000.0)),
                         Value::String(Comment(10, 20))});
      }
    }
    return db_->AddTable(std::move(table)).status();
  }

  Status GenCustomer() {
    Table table("customer", CustomerSchema());
    table.Reserve(customers_);
    for (int64_t i = 1; i <= static_cast<int64_t>(customers_); ++i) {
      int64_t nation = SkewedKey(nation_zipf_, 25);
      table.AppendRow(
          {Value::Int64(i),
           Value::String(StringPrintf("Customer#%09lld",
                                      static_cast<long long>(i))),
           Value::String(Comment(2, 4)), Value::Int64(nation),
           Value::String(Phone(nation)),
           Value::Double(rng_.UniformDouble(-999.99, 9999.99)),
           Value::String(kSegments[rng_.Uniform(5)]),
           Value::String(Comment(6, 16))});
    }
    return db_->AddTable(std::move(table)).status();
  }

  Status GenOrdersAndLineitem() {
    Table orders("orders", OrdersSchema());
    Table lineitem("lineitem", LineitemSchema());
    orders.Reserve(orders_);
    lineitem.Reserve(orders_ * 4);

    const int32_t start = DaysFromCivil(1992, 1, 1);
    const int32_t end = DaysFromCivil(1998, 8, 2);
    const char* statuses = "OFP";

    for (int64_t ok = 1; ok <= static_cast<int64_t>(orders_); ++ok) {
      int64_t ck = 1 + SkewedKey(cust_zipf_, static_cast<int64_t>(customers_));
      // Order dates run to 1998-08-02 (dbgen); late orders ship after the
      // Q1 cutoff of 1998-09-02, giving that filter its ~98% selectivity.
      int32_t odate = static_cast<int32_t>(rng_.UniformInt(start, end));
      int64_t nlines = rng_.UniformInt(1, 7);
      double total = 0;
      std::string status(1, statuses[rng_.Uniform(3)]);
      for (int64_t ln = 1; ln <= nlines; ++ln) {
        int64_t pk = 1 + SkewedKey(part_zipf_, static_cast<int64_t>(parts_));
        int64_t sk = 1 + SkewedKey(supp_zipf_, static_cast<int64_t>(suppliers_));
        double qty = 1.0 + static_cast<double>(qty_zipf_.Sample(&rng_));
        double price = qty * rng_.UniformDouble(900.0, 2000.0);
        double discount = 0.01 * static_cast<double>(rng_.UniformInt(0, 10));
        double tax = 0.01 * static_cast<double>(rng_.UniformInt(0, 8));
        int32_t sdate = odate + static_cast<int32_t>(rng_.UniformInt(1, 121));
        int32_t cdate = odate + static_cast<int32_t>(rng_.UniformInt(30, 90));
        int32_t rdate = sdate + static_cast<int32_t>(rng_.UniformInt(1, 30));
        const char* rflag =
            rdate <= DaysFromCivil(1995, 6, 17) ? (rng_.Bernoulli(0.5) ? "R"
                                                                       : "A")
                                                : "N";
        const char* lstatus = sdate > DaysFromCivil(1995, 6, 17) ? "O" : "F";
        total += price * (1 - discount) * (1 + tax);
        lineitem.AppendRow(
            {Value::Int64(ok), Value::Int64(pk), Value::Int64(sk),
             Value::Int64(ln), Value::Double(qty), Value::Double(price),
             Value::Double(discount), Value::Double(tax), Value::String(rflag),
             Value::String(lstatus), Value::Date(sdate), Value::Date(cdate),
             Value::Date(rdate),
             Value::String(kInstructions[rng_.Uniform(4)]),
             Value::String(kShipmodes[rng_.Uniform(7)]),
             Value::String(Comment(4, 10))});
      }
      orders.AppendRow(
          {Value::Int64(ok), Value::Int64(ck), Value::String(std::move(status)),
           Value::Double(total), Value::Date(odate),
           Value::String(kPriorities[rng_.Uniform(5)]),
           Value::String(StringPrintf("Clerk#%09d",
                                      static_cast<int>(rng_.UniformInt(
                                          1, std::max<int64_t>(
                                                 1, orders_ / 1000))))),
           Value::Int64(0), Value::String(Comment(6, 16))});
    }
    QPROG_RETURN_IF_ERROR(db_->AddTable(std::move(orders)).status());
    return db_->AddTable(std::move(lineitem)).status();
  }

  Status BuildIndexes() {
    // Primary-key indexes plus the foreign-key index INL plans probe.
    const std::pair<const char*, const char*> specs[] = {
        {"region", "r_regionkey"},   {"nation", "n_nationkey"},
        {"supplier", "s_suppkey"},   {"part", "p_partkey"},
        {"customer", "c_custkey"},   {"orders", "o_orderkey"},
        {"lineitem", "l_orderkey"},  {"partsupp", "ps_partkey"},
        {"lineitem", "l_partkey"},
    };
    for (const auto& [table, column] : specs) {
      QPROG_RETURN_IF_ERROR(db_->BuildOrderedIndex(table, column).status());
    }
    return OkStatus();
  }

  void CollectStats() {
    HistogramStatisticsGenerator gen(config_.histogram_buckets);
    for (const std::string& name : db_->TableNames()) {
      db_->SetStats(name, gen.Generate(*db_->GetTable(name)));
    }
  }

  const TpchConfig& config_;
  Database* db_;
  Rng rng_;
  uint64_t suppliers_;
  uint64_t parts_;
  uint64_t customers_;
  uint64_t orders_;
  ZipfDistribution part_zipf_;
  ZipfDistribution supp_zipf_;
  ZipfDistribution cust_zipf_;
  ZipfDistribution nation_zipf_;
  ZipfDistribution qty_zipf_;
};

}  // namespace

uint64_t ExpectedSuppliers(double sf) {
  return std::max<uint64_t>(10, static_cast<uint64_t>(10000 * sf));
}
uint64_t ExpectedParts(double sf) {
  return std::max<uint64_t>(200, static_cast<uint64_t>(200000 * sf));
}
uint64_t ExpectedCustomers(double sf) {
  return std::max<uint64_t>(150, static_cast<uint64_t>(150000 * sf));
}
uint64_t ExpectedOrders(double sf) {
  return ExpectedCustomers(sf) * kOrdersPerCustomer;
}

Status GenerateTpch(const TpchConfig& config, Database* db) {
  if (config.scale_factor <= 0) {
    return InvalidArgument("scale_factor must be positive");
  }
  if (config.z < 0) {
    return InvalidArgument("z must be non-negative");
  }
  TpchGenerator gen(config, db);
  return gen.Run();
}

}  // namespace tpch
}  // namespace qprog
