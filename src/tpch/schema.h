// TPC-H schema: table schemas and column-index constants used by the
// generator and the hand-crafted query plans.

#ifndef QPROG_TPCH_SCHEMA_H_
#define QPROG_TPCH_SCHEMA_H_

#include <cstddef>

#include "types/schema.h"

namespace qprog {
namespace tpch {

// Column positions. Kept as plain constants (not enum class) because they
// are used directly as row indices and offset arithmetic in join outputs.
namespace r {
inline constexpr size_t kRegionkey = 0, kName = 1, kComment = 2;
inline constexpr size_t kNumCols = 3;
}  // namespace r

namespace n {
inline constexpr size_t kNationkey = 0, kName = 1, kRegionkey = 2, kComment = 3;
inline constexpr size_t kNumCols = 4;
}  // namespace n

namespace s {
inline constexpr size_t kSuppkey = 0, kName = 1, kAddress = 2, kNationkey = 3,
                        kPhone = 4, kAcctbal = 5, kComment = 6;
inline constexpr size_t kNumCols = 7;
}  // namespace s

namespace p {
inline constexpr size_t kPartkey = 0, kName = 1, kMfgr = 2, kBrand = 3,
                        kType = 4, kSize = 5, kContainer = 6, kRetailprice = 7,
                        kComment = 8;
inline constexpr size_t kNumCols = 9;
}  // namespace p

namespace ps {
inline constexpr size_t kPartkey = 0, kSuppkey = 1, kAvailqty = 2,
                        kSupplycost = 3, kComment = 4;
inline constexpr size_t kNumCols = 5;
}  // namespace ps

namespace c {
inline constexpr size_t kCustkey = 0, kName = 1, kAddress = 2, kNationkey = 3,
                        kPhone = 4, kAcctbal = 5, kMktsegment = 6, kComment = 7;
inline constexpr size_t kNumCols = 8;
}  // namespace c

namespace o {
inline constexpr size_t kOrderkey = 0, kCustkey = 1, kOrderstatus = 2,
                        kTotalprice = 3, kOrderdate = 4, kOrderpriority = 5,
                        kClerk = 6, kShippriority = 7, kComment = 8;
inline constexpr size_t kNumCols = 9;
}  // namespace o

namespace l {
inline constexpr size_t kOrderkey = 0, kPartkey = 1, kSuppkey = 2,
                        kLinenumber = 3, kQuantity = 4, kExtendedprice = 5,
                        kDiscount = 6, kTax = 7, kReturnflag = 8,
                        kLinestatus = 9, kShipdate = 10, kCommitdate = 11,
                        kReceiptdate = 12, kShipinstruct = 13, kShipmode = 14,
                        kComment = 15;
inline constexpr size_t kNumCols = 16;
}  // namespace l

Schema RegionSchema();
Schema NationSchema();
Schema SupplierSchema();
Schema PartSchema();
Schema PartsuppSchema();
Schema CustomerSchema();
Schema OrdersSchema();
Schema LineitemSchema();

}  // namespace tpch
}  // namespace qprog

#endif  // QPROG_TPCH_SCHEMA_H_
