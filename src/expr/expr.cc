#include "expr/expr.h"

#include <cmath>

#include "common/macros.h"
#include "common/strings.h"
#include "types/date.h"

namespace qprog {

namespace {

// Kleene truth values: false(0), unknown(1), true(2).
int TruthOf(const Value& v) {
  if (v.is_null()) return 1;
  return v.bool_value() ? 2 : 0;
}

Value TruthToValue(int t) {
  if (t == 1) return Value::Null();
  return Value::Bool(t == 2);
}

}  // namespace

// --------------------------------------------------------------------------
// ColumnRefExpr

Value ColumnRefExpr::Eval(const Row& row) const {
  QPROG_DCHECK(index_ < row.size());
  return row[index_];
}

ExprPtr ColumnRefExpr::Clone() const {
  return std::make_unique<ColumnRefExpr>(index_, name_);
}

std::string ColumnRefExpr::ToString() const {
  if (!name_.empty()) return name_;
  return StringPrintf("$%zu", index_);
}

// --------------------------------------------------------------------------
// LiteralExpr

Value LiteralExpr::Eval(const Row&) const { return value_; }

ExprPtr LiteralExpr::Clone() const {
  return std::make_unique<LiteralExpr>(value_);
}

std::string LiteralExpr::ToString() const {
  if (value_.type() == TypeId::kString) return "'" + value_.ToString() + "'";
  if (value_.type() == TypeId::kDate) return "DATE '" + value_.ToString() + "'";
  return value_.ToString();
}

// --------------------------------------------------------------------------
// CompareExpr

Value CompareExpr::Eval(const Row& row) const {
  Value l = left_->Eval(row);
  if (l.is_null()) return Value::Null();
  Value r = right_->Eval(row);
  if (r.is_null()) return Value::Null();
  return Value::Bool(EvalCompareOp(op_, l.Compare(r)));
}

ExprPtr CompareExpr::Clone() const {
  return std::make_unique<CompareExpr>(op_, left_->Clone(), right_->Clone());
}

std::string CompareExpr::ToString() const {
  return "(" + left_->ToString() + " " + CompareOpToString(op_) + " " +
         right_->ToString() + ")";
}

// --------------------------------------------------------------------------
// ArithExpr

Value ArithExpr::Eval(const Row& row) const {
  Value l = left_->Eval(row);
  if (l.is_null()) return Value::Null();
  Value r = right_->Eval(row);
  if (r.is_null()) return Value::Null();
  // Integer arithmetic stays integral except division.
  if (l.type() == TypeId::kInt64 && r.type() == TypeId::kInt64 &&
      op_ != ArithOp::kDiv) {
    int64_t a = l.int64_value();
    int64_t b = r.int64_value();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Int64(a + b);
      case ArithOp::kSub:
        return Value::Int64(a - b);
      case ArithOp::kMul:
        return Value::Int64(a * b);
      case ArithOp::kDiv:
        break;
    }
  }
  double a = l.AsDouble();
  double b = r.AsDouble();
  switch (op_) {
    case ArithOp::kAdd:
      return Value::Double(a + b);
    case ArithOp::kSub:
      return Value::Double(a - b);
    case ArithOp::kMul:
      return Value::Double(a * b);
    case ArithOp::kDiv:
      if (b == 0.0) return Value::Null();
      return Value::Double(a / b);
  }
  return Value::Null();
}

ExprPtr ArithExpr::Clone() const {
  return std::make_unique<ArithExpr>(op_, left_->Clone(), right_->Clone());
}

std::string ArithExpr::ToString() const {
  const char* op = "?";
  switch (op_) {
    case ArithOp::kAdd:
      op = "+";
      break;
    case ArithOp::kSub:
      op = "-";
      break;
    case ArithOp::kMul:
      op = "*";
      break;
    case ArithOp::kDiv:
      op = "/";
      break;
  }
  return "(" + left_->ToString() + " " + op + " " + right_->ToString() + ")";
}

// --------------------------------------------------------------------------
// AndExpr / OrExpr / NotExpr

Value AndExpr::Eval(const Row& row) const {
  int truth = 2;
  for (const ExprPtr& c : children_) {
    int t = TruthOf(c->Eval(row));
    if (t == 0) return Value::Bool(false);  // short circuit
    truth = std::min(truth, t);
  }
  return TruthToValue(truth);
}

ExprPtr AndExpr::Clone() const {
  std::vector<ExprPtr> children;
  children.reserve(children_.size());
  for (const ExprPtr& c : children_) children.push_back(c->Clone());
  return std::make_unique<AndExpr>(std::move(children));
}

std::string AndExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(children_.size());
  for (const ExprPtr& c : children_) parts.push_back(c->ToString());
  return "(" + JoinStrings(parts, " AND ") + ")";
}

Value OrExpr::Eval(const Row& row) const {
  int truth = 0;
  for (const ExprPtr& c : children_) {
    int t = TruthOf(c->Eval(row));
    if (t == 2) return Value::Bool(true);  // short circuit
    truth = std::max(truth, t);
  }
  return TruthToValue(truth);
}

ExprPtr OrExpr::Clone() const {
  std::vector<ExprPtr> children;
  children.reserve(children_.size());
  for (const ExprPtr& c : children_) children.push_back(c->Clone());
  return std::make_unique<OrExpr>(std::move(children));
}

std::string OrExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(children_.size());
  for (const ExprPtr& c : children_) parts.push_back(c->ToString());
  return "(" + JoinStrings(parts, " OR ") + ")";
}

Value NotExpr::Eval(const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return Value::Null();
  return Value::Bool(!v.bool_value());
}

ExprPtr NotExpr::Clone() const {
  return std::make_unique<NotExpr>(child_->Clone());
}

std::string NotExpr::ToString() const {
  return "(NOT " + child_->ToString() + ")";
}

// --------------------------------------------------------------------------
// LikeExpr

bool LikeExpr::Matches(const std::string& text, const std::string& pattern) {
  // Iterative wildcard matching with backtracking over the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Value LikeExpr::Eval(const Row& row) const {
  Value v = input_->Eval(row);
  if (v.is_null()) return Value::Null();
  bool m = Matches(v.string_value(), pattern_);
  return Value::Bool(negated_ ? !m : m);
}

ExprPtr LikeExpr::Clone() const {
  return std::make_unique<LikeExpr>(input_->Clone(), pattern_, negated_);
}

std::string LikeExpr::ToString() const {
  return "(" + input_->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") +
         pattern_ + "')";
}

// --------------------------------------------------------------------------
// InListExpr

Value InListExpr::Eval(const Row& row) const {
  Value v = input_->Eval(row);
  if (v.is_null()) return Value::Null();
  for (const Value& item : list_) {
    if (!item.is_null() && v.Compare(item) == 0) {
      return Value::Bool(!negated_);
    }
  }
  return Value::Bool(negated_);
}

ExprPtr InListExpr::Clone() const {
  return std::make_unique<InListExpr>(input_->Clone(), list_, negated_);
}

std::string InListExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(list_.size());
  for (const Value& v : list_) parts.push_back(v.ToString());
  return "(" + input_->ToString() + (negated_ ? " NOT IN (" : " IN (") +
         JoinStrings(parts, ", ") + "))";
}

// --------------------------------------------------------------------------
// IsNullExpr

Value IsNullExpr::Eval(const Row& row) const {
  Value v = input_->Eval(row);
  return Value::Bool(negated_ ? !v.is_null() : v.is_null());
}

ExprPtr IsNullExpr::Clone() const {
  return std::make_unique<IsNullExpr>(input_->Clone(), negated_);
}

std::string IsNullExpr::ToString() const {
  return "(" + input_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL") +
         ")";
}

// --------------------------------------------------------------------------
// CaseExpr

Value CaseExpr::Eval(const Row& row) const {
  for (const Branch& b : branches_) {
    Value cond = b.condition->Eval(row);
    if (!cond.is_null() && cond.bool_value()) return b.result->Eval(row);
  }
  if (else_result_ != nullptr) return else_result_->Eval(row);
  return Value::Null();
}

ExprPtr CaseExpr::Clone() const {
  std::vector<Branch> branches;
  branches.reserve(branches_.size());
  for (const Branch& b : branches_) {
    branches.push_back(Branch{b.condition->Clone(), b.result->Clone()});
  }
  return std::make_unique<CaseExpr>(
      std::move(branches),
      else_result_ != nullptr ? else_result_->Clone() : nullptr);
}

std::string CaseExpr::ToString() const {
  std::string out = "CASE";
  for (const Branch& b : branches_) {
    out += " WHEN " + b.condition->ToString() + " THEN " + b.result->ToString();
  }
  if (else_result_ != nullptr) out += " ELSE " + else_result_->ToString();
  out += " END";
  return out;
}

// --------------------------------------------------------------------------
// ExtractYearExpr

Value ExtractYearExpr::Eval(const Row& row) const {
  Value v = input_->Eval(row);
  if (v.is_null()) return Value::Null();
  int y, m, d;
  CivilFromDays(v.date_value(), &y, &m, &d);
  return Value::Int64(y);
}

ExprPtr ExtractYearExpr::Clone() const {
  return std::make_unique<ExtractYearExpr>(input_->Clone());
}

std::string ExtractYearExpr::ToString() const {
  return "EXTRACT(YEAR FROM " + input_->ToString() + ")";
}

// --------------------------------------------------------------------------
// SubstringExpr

Value SubstringExpr::Eval(const Row& row) const {
  Value v = input_->Eval(row);
  if (v.is_null()) return Value::Null();
  const std::string& s = v.string_value();
  if (start_ < 1 || static_cast<size_t>(start_ - 1) >= s.size() ||
      length_ <= 0) {
    return Value::String("");
  }
  return Value::String(s.substr(static_cast<size_t>(start_ - 1),
                                static_cast<size_t>(length_)));
}

ExprPtr SubstringExpr::Clone() const {
  return std::make_unique<SubstringExpr>(input_->Clone(), start_, length_);
}

std::string SubstringExpr::ToString() const {
  return StringPrintf("SUBSTRING(%s, %d, %d)", input_->ToString().c_str(),
                      start_, length_);
}

// --------------------------------------------------------------------------
// Builders

namespace eb {

ExprPtr Col(size_t index, std::string name) {
  return std::make_unique<ColumnRefExpr>(index, std::move(name));
}
ExprPtr Lit(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr Int(int64_t v) { return Lit(Value::Int64(v)); }
ExprPtr Dbl(double v) { return Lit(Value::Double(v)); }
ExprPtr Str(std::string v) { return Lit(Value::String(std::move(v))); }

ExprPtr DateLit(const char* ymd) {
  auto days = ParseDate(ymd);
  QPROG_CHECK_MSG(days.ok(), "bad date literal %s", ymd);
  return Lit(Value::Date(days.value()));
}

ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<CompareExpr>(op, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kEq, std::move(l), std::move(r));
}
ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kNe, std::move(l), std::move(r));
}
ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kLt, std::move(l), std::move(r));
}
ExprPtr Le(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kLe, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kGt, std::move(l), std::move(r));
}
ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kGe, std::move(l), std::move(r));
}

ExprPtr Add(ExprPtr l, ExprPtr r) {
  return std::make_unique<ArithExpr>(ArithOp::kAdd, std::move(l), std::move(r));
}
ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return std::make_unique<ArithExpr>(ArithOp::kSub, std::move(l), std::move(r));
}
ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return std::make_unique<ArithExpr>(ArithOp::kMul, std::move(l), std::move(r));
}
ExprPtr Div(ExprPtr l, ExprPtr r) {
  return std::make_unique<ArithExpr>(ArithOp::kDiv, std::move(l), std::move(r));
}

ExprPtr And(ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> children;
  children.push_back(std::move(a));
  children.push_back(std::move(b));
  return std::make_unique<AndExpr>(std::move(children));
}
ExprPtr And(std::vector<ExprPtr> children) {
  return std::make_unique<AndExpr>(std::move(children));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> children;
  children.push_back(std::move(a));
  children.push_back(std::move(b));
  return std::make_unique<OrExpr>(std::move(children));
}
ExprPtr Or(std::vector<ExprPtr> children) {
  return std::make_unique<OrExpr>(std::move(children));
}
ExprPtr Not(ExprPtr e) { return std::make_unique<NotExpr>(std::move(e)); }

ExprPtr Like(ExprPtr input, std::string pattern) {
  return std::make_unique<LikeExpr>(std::move(input), std::move(pattern),
                                    /*negated=*/false);
}
ExprPtr NotLike(ExprPtr input, std::string pattern) {
  return std::make_unique<LikeExpr>(std::move(input), std::move(pattern),
                                    /*negated=*/true);
}
ExprPtr In(ExprPtr input, std::vector<Value> list) {
  return std::make_unique<InListExpr>(std::move(input), std::move(list),
                                      /*negated=*/false);
}
ExprPtr NotIn(ExprPtr input, std::vector<Value> list) {
  return std::make_unique<InListExpr>(std::move(input), std::move(list),
                                      /*negated=*/true);
}
ExprPtr IsNull(ExprPtr input) {
  return std::make_unique<IsNullExpr>(std::move(input), /*negated=*/false);
}
ExprPtr IsNotNull(ExprPtr input) {
  return std::make_unique<IsNullExpr>(std::move(input), /*negated=*/true);
}
ExprPtr Between(ExprPtr e, ExprPtr lo, ExprPtr hi) {
  ExprPtr copy = e->Clone();
  return And(Ge(std::move(e), std::move(lo)), Le(std::move(copy), std::move(hi)));
}
ExprPtr Year(ExprPtr input) {
  return std::make_unique<ExtractYearExpr>(std::move(input));
}
ExprPtr Substr(ExprPtr input, int start, int length) {
  return std::make_unique<SubstringExpr>(std::move(input), start, length);
}

}  // namespace eb

}  // namespace qprog
