// Scalar expression trees evaluated tuple-at-a-time by the iterator engine.
//
// NULL semantics follow SQL three-valued logic: comparisons and arithmetic
// with NULL yield NULL; AND/OR use Kleene logic; predicates reject rows whose
// condition is not strictly TRUE.

#ifndef QPROG_EXPR_EXPR_H_
#define QPROG_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "types/compare_op.h"
#include "types/schema.h"
#include "types/value.h"

namespace qprog {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kColumnRef,
  kLiteral,
  kCompare,
  kArith,
  kAnd,
  kOr,
  kNot,
  kLike,
  kInList,
  kIsNull,
  kCase,
  kExtractYear,
  kSubstring,
};

enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// Abstract scalar expression.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates against one input row.
  virtual Value Eval(const Row& row) const = 0;

  /// Deep copy.
  virtual ExprPtr Clone() const = 0;

  /// SQL-ish rendering for plan printing.
  virtual std::string ToString() const = 0;

  virtual ExprKind kind() const = 0;
};

/// References input column `index`. `name` is used only for printing.
class ColumnRefExpr : public Expr {
 public:
  explicit ColumnRefExpr(size_t index, std::string name = "")
      : index_(index), name_(std::move(name)) {}
  Value Eval(const Row& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ExprKind kind() const override { return ExprKind::kColumnRef; }
  size_t index() const { return index_; }
  const std::string& name() const { return name_; }

 private:
  size_t index_;
  std::string name_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  Value Eval(const Row& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ExprKind kind() const override { return ExprKind::kLiteral; }
  const Value& value() const { return value_; }

 private:
  Value value_;
};

class CompareExpr : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  Value Eval(const Row& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ExprKind kind() const override { return ExprKind::kCompare; }
  CompareOp op() const { return op_; }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  Value Eval(const Row& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ExprKind kind() const override { return ExprKind::kArith; }

 private:
  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class AndExpr : public Expr {
 public:
  explicit AndExpr(std::vector<ExprPtr> children)
      : children_(std::move(children)) {}
  Value Eval(const Row& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ExprKind kind() const override { return ExprKind::kAnd; }
  const std::vector<ExprPtr>& children() const { return children_; }

 private:
  std::vector<ExprPtr> children_;
};

class OrExpr : public Expr {
 public:
  explicit OrExpr(std::vector<ExprPtr> children)
      : children_(std::move(children)) {}
  Value Eval(const Row& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ExprKind kind() const override { return ExprKind::kOr; }

 private:
  std::vector<ExprPtr> children_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr child) : child_(std::move(child)) {}
  Value Eval(const Row& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ExprKind kind() const override { return ExprKind::kNot; }

 private:
  ExprPtr child_;
};

/// SQL LIKE with '%' and '_' wildcards; optional NOT.
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr input, std::string pattern, bool negated)
      : input_(std::move(input)),
        pattern_(std::move(pattern)),
        negated_(negated) {}
  Value Eval(const Row& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ExprKind kind() const override { return ExprKind::kLike; }

  /// Standalone LIKE pattern matcher (exposed for tests).
  static bool Matches(const std::string& text, const std::string& pattern);

 private:
  ExprPtr input_;
  std::string pattern_;
  bool negated_;
};

/// `input IN (v1, v2, ...)`; optional NOT.
class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr input, std::vector<Value> list, bool negated)
      : input_(std::move(input)), list_(std::move(list)), negated_(negated) {}
  Value Eval(const Row& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ExprKind kind() const override { return ExprKind::kInList; }

 private:
  ExprPtr input_;
  std::vector<Value> list_;
  bool negated_;
};

/// `input IS [NOT] NULL`.
class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr input, bool negated)
      : input_(std::move(input)), negated_(negated) {}
  Value Eval(const Row& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ExprKind kind() const override { return ExprKind::kIsNull; }

 private:
  ExprPtr input_;
  bool negated_;
};

/// Searched CASE: WHEN cond THEN result ... [ELSE result].
class CaseExpr : public Expr {
 public:
  struct Branch {
    ExprPtr condition;
    ExprPtr result;
  };
  CaseExpr(std::vector<Branch> branches, ExprPtr else_result)
      : branches_(std::move(branches)), else_result_(std::move(else_result)) {}
  Value Eval(const Row& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ExprKind kind() const override { return ExprKind::kCase; }

 private:
  std::vector<Branch> branches_;
  ExprPtr else_result_;
};

/// EXTRACT(YEAR FROM date_expr) -> BIGINT.
class ExtractYearExpr : public Expr {
 public:
  explicit ExtractYearExpr(ExprPtr input) : input_(std::move(input)) {}
  Value Eval(const Row& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ExprKind kind() const override { return ExprKind::kExtractYear; }

 private:
  ExprPtr input_;
};

/// SUBSTRING(str, start, length) with 1-based start (SQL semantics).
class SubstringExpr : public Expr {
 public:
  SubstringExpr(ExprPtr input, int start, int length)
      : input_(std::move(input)), start_(start), length_(length) {}
  Value Eval(const Row& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ExprKind kind() const override { return ExprKind::kSubstring; }

 private:
  ExprPtr input_;
  int start_;
  int length_;
};

// ---------------------------------------------------------------------------
// Builder helpers. `namespace eb` keeps plan-construction code readable:
//   eb::Gt(eb::Col(4, "l_quantity"), eb::Lit(Value::Int64(24)))
// ---------------------------------------------------------------------------
namespace eb {

ExprPtr Col(size_t index, std::string name = "");
ExprPtr Lit(Value v);
ExprPtr Int(int64_t v);
ExprPtr Dbl(double v);
ExprPtr Str(std::string v);
/// Date literal from "YYYY-MM-DD"; aborts on malformed input (builder use).
ExprPtr DateLit(const char* ymd);

ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);

ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);
ExprPtr Div(ExprPtr l, ExprPtr r);

ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr And(std::vector<ExprPtr> children);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Or(std::vector<ExprPtr> children);
ExprPtr Not(ExprPtr e);

ExprPtr Like(ExprPtr input, std::string pattern);
ExprPtr NotLike(ExprPtr input, std::string pattern);
ExprPtr In(ExprPtr input, std::vector<Value> list);
ExprPtr NotIn(ExprPtr input, std::vector<Value> list);
ExprPtr IsNull(ExprPtr input);
ExprPtr IsNotNull(ExprPtr input);
/// lo <= e AND e <= hi.
ExprPtr Between(ExprPtr e, ExprPtr lo, ExprPtr hi);
ExprPtr Year(ExprPtr input);
ExprPtr Substr(ExprPtr input, int start, int length);

}  // namespace eb

}  // namespace qprog

#endif  // QPROG_EXPR_EXPR_H_
