#include "skyserver/skyserver.h"

#include <cmath>

#include "common/macros.h"
#include "common/random.h"
#include "common/strings.h"
#include "common/zipf.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/join.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "stats/table_stats.h"

namespace qprog {
namespace skyserver {

namespace {

// photoobj columns.
constexpr size_t kPoObjid = 0, kPoRa = 1, kPoDec = 2, kPoType = 3,
                 kPoFlags = 4, kPoU = 5, kPoG = 6, kPoR = 7, kPoI = 8,
                 kPoZ = 9;
constexpr size_t kPoCols = 10;
// specobj columns.
constexpr size_t kSpSpecobjid = 0, kSpBestobjid = 1, kSpClass = 2,
                 kSpRedshift = 3, kSpZconf = 4;
constexpr size_t kSpCols = 5;
// neighbors columns.
constexpr size_t kNbObjid = 0, kNbNeighborid = 1, kNbDistance = 2;
// photoz columns.
constexpr size_t kPzObjid = 0, kPzZphot = 1, kPzZerr = 2;

constexpr int64_t kTypeGalaxy = 3;
constexpr int64_t kTypeStar = 6;

Schema PhotoobjSchema() {
  return Schema({{"objid", TypeId::kInt64},
                 {"ra", TypeId::kDouble},
                 {"dec", TypeId::kDouble},
                 {"type", TypeId::kInt64},
                 {"flags", TypeId::kInt64},
                 {"u", TypeId::kDouble},
                 {"g", TypeId::kDouble},
                 {"r", TypeId::kDouble},
                 {"i", TypeId::kDouble},
                 {"z", TypeId::kDouble}});
}

Schema SpecobjSchema() {
  return Schema({{"specobjid", TypeId::kInt64},
                 {"bestobjid", TypeId::kInt64},
                 {"class", TypeId::kString},
                 {"redshift", TypeId::kDouble},
                 {"zconf", TypeId::kDouble}});
}

Schema NeighborsSchema() {
  return Schema({{"objid", TypeId::kInt64},
                 {"neighborobjid", TypeId::kInt64},
                 {"distance", TypeId::kDouble}});
}

Schema PhotozSchema() {
  return Schema({{"objid", TypeId::kInt64},
                 {"z_phot", TypeId::kDouble},
                 {"z_err", TypeId::kDouble}});
}

}  // namespace

Status GenerateSkyServer(const SkyServerConfig& config, Database* db) {
  if (config.num_photoobj == 0) {
    return InvalidArgument("num_photoobj must be positive");
  }
  Rng rng(config.seed);
  const int64_t n = static_cast<int64_t>(config.num_photoobj);

  Table photoobj("photoobj", PhotoobjSchema());
  photoobj.Reserve(config.num_photoobj);
  for (int64_t i = 1; i <= n; ++i) {
    bool galaxy = rng.Bernoulli(0.6);
    double base = galaxy ? 20.5 : 18.5;
    double r_mag = base + rng.NextGaussian() * 1.5;
    photoobj.AppendRow(
        {Value::Int64(i), Value::Double(rng.UniformDouble(0, 360)),
         Value::Double(rng.UniformDouble(-90, 90)),
         Value::Int64(galaxy ? kTypeGalaxy : kTypeStar),
         Value::Int64(rng.UniformInt(0, 255)),
         Value::Double(r_mag + rng.UniformDouble(0.5, 2.5)),
         Value::Double(r_mag + rng.UniformDouble(0.1, 1.2)),
         Value::Double(r_mag),
         Value::Double(r_mag - rng.UniformDouble(0.0, 0.6)),
         Value::Double(r_mag - rng.UniformDouble(0.0, 1.0))});
  }

  Table specobj("specobj", SpecobjSchema());
  int64_t spec_id = 0;
  for (int64_t i = 1; i <= n; ++i) {
    if (!rng.Bernoulli(0.1)) continue;
    ++spec_id;
    double dice = rng.NextDouble();
    const char* cls = dice < 0.55 ? "GALAXY" : (dice < 0.9 ? "STAR" : "QSO");
    double redshift = cls[0] == 'S'
                          ? rng.UniformDouble(-0.001, 0.001)
                          : (cls[0] == 'Q' ? rng.UniformDouble(0.5, 4.0)
                                           : -std::log(1.0 - rng.NextDouble()) *
                                                 0.15);
    specobj.AppendRow({Value::Int64(spec_id), Value::Int64(i),
                       Value::String(cls), Value::Double(redshift),
                       Value::Double(rng.UniformDouble(0.8, 1.0))});
  }

  // Neighbor counts are zipf-skewed: dense cluster cores have many pairs.
  Table neighbors("neighbors", NeighborsSchema());
  ZipfDistribution nbr_zipf(8, 1.2);
  for (int64_t i = 1; i <= n; ++i) {
    uint64_t count = nbr_zipf.Sample(&rng);
    for (uint64_t k = 0; k < count; ++k) {
      neighbors.AppendRow({Value::Int64(i),
                           Value::Int64(rng.UniformInt(1, n)),
                           Value::Double(rng.UniformDouble(0.0, 0.5))});
    }
  }

  Table photoz("photoz", PhotozSchema());
  photoz.Reserve(config.num_photoobj);
  for (int64_t i = 1; i <= n; ++i) {
    double zp = -std::log(1.0 - rng.NextDouble()) * 0.2;
    photoz.AppendRow({Value::Int64(i), Value::Double(zp),
                      Value::Double(rng.UniformDouble(0.01, 0.2))});
  }

  QPROG_RETURN_IF_ERROR(db->AddTable(std::move(photoobj)).status());
  QPROG_RETURN_IF_ERROR(db->AddTable(std::move(specobj)).status());
  QPROG_RETURN_IF_ERROR(db->AddTable(std::move(neighbors)).status());
  QPROG_RETURN_IF_ERROR(db->AddTable(std::move(photoz)).status());

  if (config.collect_stats) {
    HistogramStatisticsGenerator gen(32);
    for (const std::string& name : db->TableNames()) {
      db->SetStats(name, gen.Generate(*db->GetTable(name)));
    }
  }
  return OkStatus();
}

std::vector<int> AvailableSkyQueries() { return {3, 6, 14, 18, 22, 28, 32}; }

namespace {

using qprog::eb::And;
using qprog::eb::Col;
using qprog::eb::Dbl;
using qprog::eb::Eq;
using qprog::eb::Ge;
using qprog::eb::Gt;
using qprog::eb::Int;
using qprog::eb::Le;
using qprog::eb::Lt;
using qprog::eb::Mul;
using qprog::eb::Str;
using qprog::eb::Sub;

OperatorPtr Scan(const Database& db, const char* table) {
  const Table* t = db.GetTable(table);
  QPROG_CHECK_MSG(t != nullptr, "missing table %s", table);
  auto scan = std::make_unique<SeqScan>(t);
  scan->set_estimated_rows(static_cast<double>(t->num_rows()));
  return scan;
}

OperatorPtr Sigma(OperatorPtr child, ExprPtr pred, double est) {
  auto f = std::make_unique<Filter>(std::move(child), std::move(pred));
  f->set_estimated_rows(est);
  return f;
}

OperatorPtr CountStar(OperatorPtr child) {
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  return std::make_unique<HashAggregate>(std::move(child),
                                         std::vector<ExprPtr>{},
                                         std::vector<std::string>{},
                                         std::move(aggs));
}

// SQ3 (paper query 3 analogue): galaxy color distribution; the type
// predicate merges into the scan (paper mu = 1.008 for its Table 3 row).
// SELECT round(g - r), count(*) FROM photoobj WHERE type = galaxy GROUP BY 1.
PhysicalPlan BuildSq3(const Database& db) {
  const Table* t = db.GetTable("photoobj");
  QPROG_CHECK(t != nullptr);
  auto f = std::make_unique<SeqScan>(
      t, Eq(Col(kPoType, "type"), Int(kTypeGalaxy)));
  f->set_estimated_rows(0.6 * static_cast<double>(t->num_rows()));
  std::vector<ExprPtr> groups;
  // Bucket g - r into tenths via multiply (no floor op: grouping by the
  // continuous value times ten cast through arithmetic keeps ~small groups).
  groups.push_back(Mul(Dbl(10.0), Sub(Col(kPoG, "g"), Col(kPoR, "r"))));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  auto agg = std::make_unique<HashAggregate>(
      std::move(f), std::move(groups), std::vector<std::string>{"color"},
      std::move(aggs));
  agg->set_estimated_rows(500);
  return PhysicalPlan(std::move(agg));
}

// SQ6: QSO redshift survey. photoobj |x| specobj, sigma(class='QSO'),
// aggregate per confidence.
PhysicalPlan BuildSq6(const Database& db) {
  auto spec = Sigma(Scan(db, "specobj"), Eq(Col(kSpClass, "class"),
                                            Str("QSO")),
                    400);
  std::vector<ExprPtr> pk, bk;
  pk.push_back(Col(kPoObjid, "objid"));
  bk.push_back(Col(kSpBestobjid, "bestobjid"));
  auto join = std::make_unique<HashJoin>(Scan(db, "photoobj"), std::move(spec),
                                         std::move(pk), std::move(bk));
  join->set_is_linear(true);
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kAvg, Col(kPoCols + kSpRedshift, "redshift"),
                    "avg_z");
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  auto agg = std::make_unique<HashAggregate>(
      std::move(join), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs));
  return PhysicalPlan(std::move(agg));
}

// SQ14: bright-star magnitude summary.
PhysicalPlan BuildSq14(const Database& db) {
  std::vector<ExprPtr> conj;
  conj.push_back(Eq(Col(kPoType, "type"), Int(kTypeStar)));
  conj.push_back(Lt(Col(kPoR, "r"), Dbl(18.0)));
  auto f = Sigma(Scan(db, "photoobj"), And(std::move(conj)), 5000);
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kAvg, Col(kPoU, "u"), "avg_u");
  aggs.emplace_back(AggFunc::kAvg, Col(kPoG, "g"), "avg_g");
  aggs.emplace_back(AggFunc::kMin, Col(kPoR, "r"), "min_r");
  aggs.emplace_back(AggFunc::kMax, Col(kPoR, "r"), "max_r");
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  auto agg = std::make_unique<HashAggregate>(
      std::move(f), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs));
  return PhysicalPlan(std::move(agg));
}

// SQ18: close galaxy pairs (merger candidates) — the join-heavy case.
// neighbors |x| photoobj, sigma(distance, galaxy), count.
PhysicalPlan BuildSq18(const Database& db) {
  auto nbr = Sigma(Scan(db, "neighbors"),
                   Lt(Col(kNbDistance, "distance"), Dbl(0.3)), 8000);
  std::vector<ExprPtr> pk, bk;
  pk.push_back(Col(kNbNeighborid, "neighborobjid"));
  bk.push_back(Col(kPoObjid, "objid"));
  auto join = std::make_unique<HashJoin>(std::move(nbr), Scan(db, "photoobj"),
                                         std::move(pk), std::move(bk));
  join->set_is_linear(true);
  auto f = Sigma(std::move(join),
                 Eq(Col(3 + kPoType, "type"), Int(kTypeGalaxy)), 5000);
  return PhysicalPlan(CountStar(std::move(f)));
}

// SQ22: photometric vs spectroscopic redshift comparison.
// photoz |x| specobj on objid, residual statistics.
PhysicalPlan BuildSq22(const Database& db) {
  std::vector<ExprPtr> pk, bk;
  pk.push_back(Col(kPzObjid, "objid"));
  bk.push_back(Col(kSpBestobjid, "bestobjid"));
  auto join = std::make_unique<HashJoin>(Scan(db, "photoz"),
                                         Scan(db, "specobj"), std::move(pk),
                                         std::move(bk));
  join->set_is_linear(true);
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kAvg,
                    Sub(Col(kPzZphot, "z_phot"),
                        Col(3 + kSpRedshift, "redshift")),
                    "avg_resid");
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  auto agg = std::make_unique<HashAggregate>(
      std::move(join), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs));
  return PhysicalPlan(std::move(agg));
}

// SQ28: flag census over the full photometry table.
PhysicalPlan BuildSq28(const Database& db) {
  auto f = Sigma(Scan(db, "photoobj"), Gt(Col(kPoFlags, "flags"), Int(240)),
                 2500);
  std::vector<ExprPtr> groups;
  groups.push_back(Col(kPoType, "type"));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  auto agg = std::make_unique<HashAggregate>(
      std::move(f), std::move(groups), std::vector<std::string>{"type"},
      std::move(aggs));
  agg->set_estimated_rows(2);
  return PhysicalPlan(std::move(agg));
}

// SQ32: spectra classified per class in a redshift shell.
PhysicalPlan BuildSq32(const Database& db) {
  auto spec = Sigma(Scan(db, "specobj"),
                    And(Ge(Col(kSpRedshift, "redshift"), Dbl(0.05)),
                        Le(Col(kSpRedshift, "redshift"), Dbl(0.25))),
                    1500);
  std::vector<ExprPtr> pk, bk;
  pk.push_back(Col(kSpBestobjid, "bestobjid"));
  bk.push_back(Col(kPoObjid, "objid"));
  auto join = std::make_unique<HashJoin>(std::move(spec), Scan(db, "photoobj"),
                                         std::move(pk), std::move(bk));
  join->set_is_linear(true);
  std::vector<ExprPtr> groups;
  groups.push_back(Col(kSpClass, "class"));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  aggs.emplace_back(AggFunc::kAvg, Col(kSpCols + kPoR, "r"), "avg_r");
  auto agg = std::make_unique<HashAggregate>(
      std::move(join), std::move(groups), std::vector<std::string>{"class"},
      std::move(aggs));
  agg->set_estimated_rows(3);
  return PhysicalPlan(std::move(agg));
}

}  // namespace

StatusOr<PhysicalPlan> BuildSkyQuery(int id, const Database& db) {
  switch (id) {
    case 3:
      return BuildSq3(db);
    case 6:
      return BuildSq6(db);
    case 14:
      return BuildSq14(db);
    case 18:
      return BuildSq18(db);
    case 22:
      return BuildSq22(db);
    case 28:
      return BuildSq28(db);
    case 32:
      return BuildSq32(db);
    default:
      return InvalidArgument(
          StringPrintf("no SkyServer query %d (have 3,6,14,18,22,28,32)", id));
  }
}

}  // namespace skyserver
}  // namespace qprog
