// Synthetic SkyServer stand-in (see DESIGN.md, Substitutions).
//
// The paper's Table 3 measures mu for 7 long-running queries of the SDSS
// SkyServer personal-edition database. The real data is not redistributable
// here, so this module generates an astronomical-shaped database (photometry
// and spectra with realistic magnitude/redshift distributions, a neighbors
// self-relation) and re-expresses the analysis queries over it. Table 3 only
// depends on plan shape — large scans feeding small aggregations, with a few
// join-heavy cases — which the analogue preserves.

#ifndef QPROG_SKYSERVER_SKYSERVER_H_
#define QPROG_SKYSERVER_SKYSERVER_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "exec/plan.h"
#include "storage/catalog.h"

namespace qprog {
namespace skyserver {

struct SkyServerConfig {
  uint64_t num_photoobj = 40000;
  uint64_t seed = 20050614;
  bool collect_stats = true;
};

/// Populates `db` with: photoobj (photometry; ~num_photoobj rows), specobj
/// (spectra for ~10% of objects), neighbors (~2 per object, zipf-skewed),
/// photoz (photometric redshift estimates, one per object).
Status GenerateSkyServer(const SkyServerConfig& config, Database* db);

/// Query ids mirroring the paper's Table 3 rows: 3, 6, 14, 18, 22, 28, 32.
std::vector<int> AvailableSkyQueries();

/// Builds the plan for SkyServer query `id` over `db`.
StatusOr<PhysicalPlan> BuildSkyQuery(int id, const Database& db);

}  // namespace skyserver
}  // namespace qprog

#endif  // QPROG_SKYSERVER_SKYSERVER_H_
