#include "types/compare_op.h"

namespace qprog {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompareOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

}  // namespace qprog
