// Calendar date helpers. Dates are represented as int32 days since the Unix
// epoch (1970-01-01), the representation stored inside Value(kDate).

#ifndef QPROG_TYPES_DATE_H_
#define QPROG_TYPES_DATE_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"

namespace qprog {

/// Days since 1970-01-01 for the given civil date (proleptic Gregorian).
int32_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int32_t days, int* year, int* month, int* day);

/// Parses "YYYY-MM-DD". Returns InvalidArgument on malformed input.
StatusOr<int32_t> ParseDate(std::string_view text);

/// Formats days-since-epoch as "YYYY-MM-DD".
std::string FormatDate(int32_t days);

/// Adds `months` calendar months, clamping the day-of-month (SQL interval
/// semantics: 1995-01-31 + 1 month = 1995-02-28).
int32_t AddMonths(int32_t days, int months);

/// Adds `years` calendar years with the same day clamping.
int32_t AddYears(int32_t days, int years);

}  // namespace qprog

#endif  // QPROG_TYPES_DATE_H_
