#include "types/schema.h"

namespace qprog {

int Schema::FindField(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Field> fields = left.fields_;
  fields.insert(fields.end(), right.fields_.begin(), right.fields_.end());
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += TypeIdToString(fields_[i].type);
  }
  return out;
}

}  // namespace qprog
