// Schema: ordered, named, typed fields describing a Table or operator output.

#ifndef QPROG_TYPES_SCHEMA_H_
#define QPROG_TYPES_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "types/value.h"

namespace qprog {

/// One column of a schema.
struct Field {
  std::string name;
  TypeId type = TypeId::kNull;

  Field() = default;
  Field(std::string n, TypeId t) : name(std::move(n)), type(t) {}

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// An ordered list of fields. Cheap to copy.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or -1 if absent. Names are matched
  /// case-sensitively; callers normalize as needed.
  int FindField(std::string_view name) const;

  /// Concatenation (used by joins: left schema ++ right schema).
  static Schema Concat(const Schema& left, const Schema& right);

  /// "name:TYPE, name:TYPE, ..." for debugging.
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace qprog

#endif  // QPROG_TYPES_SCHEMA_H_
