// Comparison operators shared by the expression layer, the SQL frontend and
// the statistics/selectivity machinery.

#ifndef QPROG_TYPES_COMPARE_OP_H_
#define QPROG_TYPES_COMPARE_OP_H_

namespace qprog {

enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// "=", "<>", "<", "<=", ">", ">=".
const char* CompareOpToString(CompareOp op);

/// Applies `op` to a three-way comparison result (negative/zero/positive).
bool EvalCompareOp(CompareOp op, int cmp);

}  // namespace qprog

#endif  // QPROG_TYPES_COMPARE_OP_H_
