// Value: the dynamically-typed scalar flowing through the iterator engine.
//
// The engine is tuple-at-a-time (the getnext model of the paper is defined on
// iterator calls, so a row-oriented engine is the faithful substrate). A
// Value is a small tagged union over the SQL types the TPC-H / SkyServer
// workloads need: NULL, BOOLEAN, BIGINT, DOUBLE, DATE and VARCHAR.

#ifndef QPROG_TYPES_VALUE_H_
#define QPROG_TYPES_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace qprog {

enum class TypeId : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kDate = 4,    // int32 days since 1970-01-01
  kString = 5,
};

/// Returns "NULL", "BOOLEAN", "BIGINT", "DOUBLE", "DATE" or "VARCHAR".
const char* TypeIdToString(TypeId type);

/// True for BIGINT, DOUBLE and DATE (types that order numerically).
bool IsNumericType(TypeId type);

/// A dynamically typed scalar. Copyable; strings are owned.
class Value {
 public:
  /// SQL NULL.
  Value() : type_(TypeId::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v);
  static Value Int64(int64_t v);
  static Value Double(double v);
  static Value Date(int32_t days);
  static Value String(std::string v);

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  /// Typed accessors; abort on type mismatch (programmer error).
  bool bool_value() const;
  int64_t int64_value() const;
  double double_value() const;
  int32_t date_value() const;
  const std::string& string_value() const;

  /// Numeric view: BIGINT/DOUBLE/DATE/BOOL coerced to double; aborts
  /// otherwise. Used by arithmetic and aggregation.
  double AsDouble() const;

  /// SQL three-valued-logic equality/comparison collapse: any comparison with
  /// NULL is "unknown" and callers treat it as false. `Compare` returns
  /// negative/zero/positive; both inputs must be non-NULL and of comparable
  /// types (numeric with numeric, string with string, bool with bool).
  int Compare(const Value& other) const;

  /// Strict equality used by hash tables and DISTINCT: NULL equals NULL,
  /// 1 (BIGINT) equals 1.0 (DOUBLE), strings compare bytewise.
  bool EqualsForGrouping(const Value& other) const;

  /// Hash consistent with EqualsForGrouping.
  size_t Hash() const;

  /// SQL-text rendering (strings unquoted; dates as YYYY-MM-DD).
  std::string ToString() const;

  /// Equality operator matches EqualsForGrouping (used by tests).
  friend bool operator==(const Value& a, const Value& b) {
    return a.EqualsForGrouping(b);
  }

 private:
  TypeId type_;
  union {
    bool bool_;
    int64_t int64_;
    double double_;
    int32_t date_;
  } u_ = {};
  std::string string_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// A tuple: a flat vector of values positionally matched to a Schema.
using Row = std::vector<Value>;

/// Renders "(v1, v2, ...)" for debugging.
std::string RowToString(const Row& row);

/// Hash/equality over whole rows (grouping semantics), usable as functors in
/// unordered containers keyed by Row.
struct RowHash {
  size_t operator()(const Row& row) const;
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

}  // namespace qprog

#endif  // QPROG_TYPES_VALUE_H_
