#include "types/value.h"

#include <cmath>
#include <functional>

#include "common/macros.h"
#include "common/strings.h"
#include "types/date.h"

namespace qprog {

const char* TypeIdToString(TypeId type) {
  switch (type) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return "BOOLEAN";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kString:
      return "VARCHAR";
  }
  return "UNKNOWN";
}

bool IsNumericType(TypeId type) {
  return type == TypeId::kInt64 || type == TypeId::kDouble ||
         type == TypeId::kDate;
}

Value Value::Bool(bool v) {
  Value r;
  r.type_ = TypeId::kBool;
  r.u_.bool_ = v;
  return r;
}

Value Value::Int64(int64_t v) {
  Value r;
  r.type_ = TypeId::kInt64;
  r.u_.int64_ = v;
  return r;
}

Value Value::Double(double v) {
  Value r;
  r.type_ = TypeId::kDouble;
  r.u_.double_ = v;
  return r;
}

Value Value::Date(int32_t days) {
  Value r;
  r.type_ = TypeId::kDate;
  r.u_.date_ = days;
  return r;
}

Value Value::String(std::string v) {
  Value r;
  r.type_ = TypeId::kString;
  r.string_ = std::move(v);
  return r;
}

bool Value::bool_value() const {
  QPROG_CHECK(type_ == TypeId::kBool);
  return u_.bool_;
}

int64_t Value::int64_value() const {
  QPROG_CHECK(type_ == TypeId::kInt64);
  return u_.int64_;
}

double Value::double_value() const {
  QPROG_CHECK(type_ == TypeId::kDouble);
  return u_.double_;
}

int32_t Value::date_value() const {
  QPROG_CHECK(type_ == TypeId::kDate);
  return u_.date_;
}

const std::string& Value::string_value() const {
  QPROG_CHECK(type_ == TypeId::kString);
  return string_;
}

double Value::AsDouble() const {
  switch (type_) {
    case TypeId::kBool:
      return u_.bool_ ? 1.0 : 0.0;
    case TypeId::kInt64:
      return static_cast<double>(u_.int64_);
    case TypeId::kDouble:
      return u_.double_;
    case TypeId::kDate:
      return static_cast<double>(u_.date_);
    default:
      QPROG_CHECK_MSG(false, "AsDouble on %s", TypeIdToString(type_));
      return 0.0;
  }
}

int Value::Compare(const Value& other) const {
  QPROG_CHECK_MSG(!is_null() && !other.is_null(), "Compare with NULL");
  if (type_ == TypeId::kString || other.type_ == TypeId::kString) {
    QPROG_CHECK_MSG(
        type_ == TypeId::kString && other.type_ == TypeId::kString,
        "comparing %s with %s", TypeIdToString(type_),
        TypeIdToString(other.type_));
    return string_.compare(other.string_);
  }
  if (type_ == TypeId::kBool || other.type_ == TypeId::kBool) {
    QPROG_CHECK(type_ == TypeId::kBool && other.type_ == TypeId::kBool);
    return static_cast<int>(u_.bool_) - static_cast<int>(other.u_.bool_);
  }
  // Exact comparison for same-typed integers/dates avoids double rounding.
  if (type_ == other.type_ && type_ == TypeId::kInt64) {
    if (u_.int64_ < other.u_.int64_) return -1;
    return u_.int64_ > other.u_.int64_ ? 1 : 0;
  }
  if (type_ == other.type_ && type_ == TypeId::kDate) {
    if (u_.date_ < other.u_.date_) return -1;
    return u_.date_ > other.u_.date_ ? 1 : 0;
  }
  double a = AsDouble();
  double b = other.AsDouble();
  if (a < b) return -1;
  return a > b ? 1 : 0;
}

bool Value::EqualsForGrouping(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (type_ == TypeId::kString || other.type_ == TypeId::kString) {
    return type_ == other.type_ && string_ == other.string_;
  }
  if (type_ == TypeId::kBool || other.type_ == TypeId::kBool) {
    return type_ == other.type_ && u_.bool_ == other.u_.bool_;
  }
  return Compare(other) == 0;
}

size_t Value::Hash() const {
  switch (type_) {
    case TypeId::kNull:
      return 0x9E3779B9u;
    case TypeId::kBool:
      return u_.bool_ ? 0x5BD1E995u : 0xC2B2AE35u;
    case TypeId::kString:
      return std::hash<std::string>()(string_);
    default: {
      // Hash numerics through double so 1 and 1.0 collide (they are equal
      // under EqualsForGrouping).
      double d = AsDouble();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return std::hash<double>()(d);
    }
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return u_.bool_ ? "true" : "false";
    case TypeId::kInt64:
      return StringPrintf("%lld", static_cast<long long>(u_.int64_));
    case TypeId::kDouble:
      return StringPrintf("%g", u_.double_);
    case TypeId::kDate:
      return FormatDate(u_.date_);
    case TypeId::kString:
      return string_;
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

size_t RowHash::operator()(const Row& row) const {
  size_t h = 0x84222325u;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].EqualsForGrouping(b[i])) return false;
  }
  return true;
}

}  // namespace qprog
