#include "types/date.h"

#include <cstdio>

#include "common/strings.h"

namespace qprog {

namespace {

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInMonth(int y, int m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

// Howard Hinnant's days_from_civil algorithm.
int32_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int32_t days, int* year, int* month, int* day) {
  int32_t z = days + 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *year = y + (m <= 2);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

StatusOr<int32_t> ParseDate(std::string_view text) {
  int y = 0, m = 0, d = 0;
  std::string s(text);
  if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return InvalidArgument(StringPrintf("malformed date '%s'", s.c_str()));
  }
  if (m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m)) {
    return InvalidArgument(StringPrintf("out-of-range date '%s'", s.c_str()));
  }
  return DaysFromCivil(y, m, d);
}

std::string FormatDate(int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return StringPrintf("%04d-%02d-%02d", y, m, d);
}

int32_t AddMonths(int32_t days, int months) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  int total = (y * 12 + (m - 1)) + months;
  int ny = total / 12;
  int nm = total % 12;
  if (nm < 0) {
    nm += 12;
    ny -= 1;
  }
  nm += 1;
  int nd = d;
  int dim = DaysInMonth(ny, nm);
  if (nd > dim) nd = dim;
  return DaysFromCivil(ny, nm, nd);
}

int32_t AddYears(int32_t days, int years) { return AddMonths(days, years * 12); }

}  // namespace qprog
